"""Command-line interface for the RAQO reproduction.

Subcommands:

- ``plan``    -- jointly optimize a TPC-H query and print the joint plan,
  the predicted cost, and the planning metrics.
- ``execute`` -- optimize and run a query on the simulated engine,
  comparing RAQO against the two-step baseline.
- ``figure``  -- regenerate one of the paper's figures (fig01..fig17).
- ``trees``   -- print the default (Fig 10) and learned RAQO (Fig 11)
  decision trees for an engine.
- ``workload`` -- plan and simulate a generated multi-query workload,
  optionally fanning queries out over a worker pool (``--parallel N``).
- ``run``     -- alias of ``execute``; with ``--faults SPEC`` the
  simulated cluster injects deterministic preemptions, OOM kills, and
  stragglers, and the engine recovers via retries, speculation, and
  BHJ -> SMJ degradation (see :mod:`repro.faults`).
- ``lint``    -- run the AST-based invariant linter
  (:mod:`repro.analysis`) over the source tree; ``--plans`` also
  validates optimized plans for every TPC-H evaluation query with the
  runtime well-formedness checker.
- ``serve``   -- start the multi-tenant optimizer service
  (:mod:`repro.serving`) and push a round-robin request smoke through
  it, printing per-request serving lines and the cache summary.
- ``replay``  -- replay a deterministic Poisson or bursty traffic trace
  through the optimizer service and report QPS plus p50/p95/p99
  planning latency, overall and per tenant (optionally writing the
  JSON report).  ``serve`` and ``replay`` both take telemetry flags:
  ``--stats-file`` (Prometheus text exposition), ``--events``
  (structured JSONL event log), ``--slo-target-ms``/``--slo-objective``
  (per-tenant latency SLO with burn-rate alerts), and ``serve
  --metrics-addr HOST:PORT`` exposes a live ``/metrics`` scrape
  endpoint.
- ``top``     -- render the text dashboard over the artifacts the
  telemetry flags wrote (``--events``/``--stats``, optionally
  ``--follow``).

Examples::

    python -m repro plan --query Q3 --scale-factor 100
    python -m repro plan --query All --planner fast_randomized
    python -m repro execute --query Q2 --containers 40 --container-gb 6
    python -m repro run --query Q3 --faults "seed=7,preempt=0.1,oom=0.3"
    python -m repro run --query Q3 --trace out.json --metrics
    python -m repro workload --num-queries 20 --faults oom=0.2,seed=1
    python -m repro figure fig03
    python -m repro trees --engine spark
    python -m repro workload --num-queries 20 --parallel 4 --trace-dir t/
    python -m repro lint src --plans
    python -m repro serve --requests 12 --workers 4
    python -m repro serve --requests 50 --metrics-addr 127.0.0.1:0
    python -m repro replay --arrival bursty --num-requests 200 --workers 4
    python -m repro replay --num-requests 100 --slo-target-ms 5 \\
        --stats-file stats.prom --events events.jsonl
    python -m repro top --events events.jsonl --stats stats.prom
"""

from __future__ import annotations

import argparse
import dataclasses
import importlib
import sys
from typing import List, Optional, TYPE_CHECKING, Tuple

if TYPE_CHECKING:
    from repro.faults import FaultPlan, RecoveryPolicy

from repro.api import RaqoSession
from repro.catalog import tpch
from repro.cluster.cluster import ClusterConditions
from repro.core.pareto import (
    OBJECTIVE_SPECS,
    ParetoPlanningResult,
    PlanObjective,
)
from repro.core.raqo import (
    PlannerKind,
    RaqoPlanner,
    ResourcePlanningMethod,
)
from repro.engine.profiles import HIVE_PROFILE, SPARK_PROFILE
from repro.obs.tracing import Tracer

#: Figure-name -> experiments module (each exposes ``main()``).
FIGURE_MODULES = {
    "fig01": "repro.experiments.fig01_queue_cdf",
    "fig02": "repro.experiments.fig02_potential_gains",
    "fig03": "repro.experiments.fig03_operator_switch",
    "fig04": "repro.experiments.fig04_data_switch",
    "fig05": "repro.experiments.fig05_join_order",
    "fig06": "repro.experiments.fig06_monetary",
    "fig07": "repro.experiments.fig07_monetary_switch",
    "fig08": "repro.experiments.fig08_architecture",
    "fig09": "repro.experiments.fig09_switch_space",
    "fig10": "repro.experiments.fig10_default_trees",
    "fig11": "repro.experiments.fig11_raqo_trees",
    "fig12": "repro.experiments.fig12_tpch_planning",
    "fig13": "repro.experiments.fig13_hill_climbing",
    "fig14": "repro.experiments.fig14_plan_cache",
    "fig15": "repro.experiments.fig15_scalability",
    "fig16": "repro.experiments.fig16_robustness",
    "fig17": "repro.experiments.fig17_pareto_frontier",
}

_QUERIES = {q.name: q for q in tpch.EVALUATION_QUERIES}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RAQO: joint resource and query optimization",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    plan = sub.add_parser("plan", help="optimize a TPC-H query")
    _add_common(plan)

    execute = sub.add_parser(
        "execute",
        aliases=["run"],
        help="optimize and simulate execution (alias: run)",
    )
    _add_common(execute)
    _add_fault_options(execute)
    _add_trace_options(execute)

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument(
        "name",
        choices=sorted(FIGURE_MODULES),
        help="figure to regenerate",
    )

    trees = sub.add_parser(
        "trees", help="print the Fig 10/11 decision trees"
    )
    trees.add_argument(
        "--engine",
        choices=("hive", "spark"),
        default="hive",
        help="engine profile to train against",
    )

    workload = sub.add_parser(
        "workload", help="plan and simulate a generated workload"
    )
    _add_planner_options(workload)
    workload.add_argument(
        "--num-queries",
        type=int,
        default=20,
        help="number of generated workload queries",
    )
    workload.add_argument(
        "--seed",
        type=int,
        default=0,
        help="workload generator seed",
    )
    workload.add_argument(
        "--parallel",
        "--workers",
        dest="parallel",
        type=int,
        default=1,
        metavar="WORKERS",
        help=(
            "plan queries concurrently on this many threads "
            "(best when planning is numpy-kernel dominated)"
        ),
    )
    workload.add_argument(
        "--procs",
        type=int,
        default=0,
        metavar="PROCS",
        help=(
            "shard queries across a process pool of this size instead "
            "of threads (best for GIL-bound planning on many cores); "
            "mutually exclusive with --parallel/--workers"
        ),
    )
    workload.add_argument(
        "--trace-dir",
        metavar="DIR",
        default=None,
        help=(
            "record spans and write the full export bundle "
            "(trace.json, spans.jsonl, report.txt, metrics.json) here"
        ),
    )
    _add_fault_options(workload)

    serve = sub.add_parser(
        "serve",
        help="start the optimizer service and smoke it with requests",
    )
    _add_planner_options(serve)
    _add_serving_options(serve)
    serve.add_argument(
        "--requests",
        type=int,
        default=12,
        help="number of smoke requests to push through the service",
    )
    serve.add_argument(
        "--tenants",
        type=int,
        default=3,
        help="number of synthetic tenants to round-robin over",
    )
    serve.add_argument(
        "--metrics",
        action="store_true",
        help="print the session's metrics summary after serving",
    )
    serve.add_argument(
        "--metrics-addr",
        metavar="HOST:PORT",
        default=None,
        help="expose a Prometheus /metrics scrape endpoint here "
        "while the service runs (port 0 picks a free port)",
    )

    rep = sub.add_parser(
        "replay",
        help="replay a traffic trace through the optimizer service",
    )
    _add_planner_options(rep)
    _add_serving_options(rep)
    rep.add_argument(
        "--arrival",
        choices=("poisson", "bursty"),
        default="poisson",
        help="arrival process for the synthetic trace",
    )
    rep.add_argument(
        "--num-requests",
        type=int,
        default=200,
        help="trace length in requests",
    )
    rep.add_argument(
        "--tenants",
        type=int,
        default=4,
        help="number of synthetic tenants",
    )
    rep.add_argument(
        "--seed",
        type=int,
        default=0,
        help="trace seed (arrivals, tenants, query mix)",
    )
    rep.add_argument(
        "--time-scale",
        type=float,
        default=0.0,
        help="pace arrivals against the trace timeline "
        "(1.0 = real time; 0 = as fast as possible)",
    )
    rep.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="write the replay report as JSON here",
    )

    top = sub.add_parser(
        "top",
        help="render a live text dashboard from telemetry artifacts",
    )
    top.add_argument(
        "--events",
        metavar="FILE",
        default=None,
        help="JSONL event log to render (from serve/replay --events)",
    )
    top.add_argument(
        "--stats",
        metavar="FILE",
        default=None,
        help="Prometheus stats file to render (from --stats-file)",
    )
    top.add_argument(
        "--follow",
        action="store_true",
        help="re-render on an interval instead of printing once",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh interval for --follow (default 2.0)",
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=0,
        metavar="N",
        help="with --follow, stop after N renders (0 = until ^C)",
    )

    lint = sub.add_parser(
        "lint", help="run the invariant linter (repro.analysis)"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    lint.add_argument(
        "--rule",
        action="append",
        metavar="ID_OR_NAME",
        help="run only this rule (repeatable)",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="findings output format",
    )
    lint.add_argument(
        "--no-suppress",
        action="store_true",
        help="ignore '# lint: disable' pragmas",
    )
    lint.add_argument(
        "--sarif",
        metavar="FILE",
        help="additionally write a SARIF 2.1.0 log to FILE ('-' for "
        "stdout)",
    )
    lint.add_argument(
        "--baseline",
        metavar="FILE",
        help="only fail on findings not recorded in this baseline file",
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the --baseline file from the current findings",
    )
    lint.add_argument(
        "--graph",
        action="store_true",
        help="dump the resolved whole-program call graph and exit",
    )
    lint.add_argument(
        "--plans",
        action="store_true",
        help="also validate optimized plans for every TPC-H "
        "evaluation query with the runtime well-formedness checker",
    )
    return parser


def _add_serving_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="service worker threads",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=128,
        help="admission queue bound (requests beyond it are rejected "
        "with a typed Overloaded error)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=0,
        help="cap on concurrent optimizer runs (0 = same as --workers)",
    )
    parser.add_argument(
        "--cache-shards",
        type=int,
        default=8,
        help="cross-tenant plan cache: number of lock-striped shards",
    )
    parser.add_argument(
        "--cache-capacity",
        type=int,
        default=64,
        help="cross-tenant plan cache: entries per shard (LRU beyond)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the cross-tenant plan cache",
    )
    parser.add_argument(
        "--stats-file",
        metavar="FILE",
        default=None,
        help="write the Prometheus text-format exposition here "
        "after the run",
    )
    parser.add_argument(
        "--events",
        metavar="FILE",
        default=None,
        help="write the unified telemetry event log (JSONL) here "
        "after the run",
    )
    parser.add_argument(
        "--slo-target-ms",
        type=float,
        default=None,
        metavar="MS",
        help="track a per-tenant latency SLO against this target "
        "(burn-rate alerts land in the event log)",
    )
    parser.add_argument(
        "--slo-objective",
        type=float,
        default=0.95,
        metavar="FRACTION",
        help="fraction of requests that must meet --slo-target-ms "
        "(default 0.95)",
    )


def _make_service(
    session: RaqoSession, args: argparse.Namespace
) -> "object":
    from repro.obs.slo import SloPolicy
    from repro.serving import ServiceConfig

    slo = None
    if args.slo_target_ms is not None:
        slo = SloPolicy(
            latency_target_ms=args.slo_target_ms,
            objective=args.slo_objective,
        )
    return session.serve(
        ServiceConfig(
            workers=args.workers,
            max_queue=args.queue_depth,
            max_inflight=args.max_inflight,
            cache_enabled=not args.no_cache,
            cache_shards=args.cache_shards,
            cache_shard_capacity=args.cache_capacity,
            slo=slo,
        )
    )


def _export_telemetry(
    session: RaqoSession, args: argparse.Namespace
) -> None:
    """Honour the --stats-file/--events telemetry export flags."""
    if getattr(args, "stats_file", None):
        session.write_stats_file(args.stats_file)
        print(f"stats file written: {args.stats_file}")
    if getattr(args, "events", None):
        count = session.write_events(args.events)
        print(f"events written: {args.events} ({count} events)")


def _add_fault_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help=(
            "inject deterministic faults during simulated execution; "
            "SPEC is key=value pairs, e.g. "
            "'seed=7,preempt=0.1,oom=0.3,straggle=0.1,slowdown=4'"
        ),
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="recovery policy: retries per stage (default 3)",
    )


def _add_trace_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a Chrome trace_event JSON timeline here "
        "(loads in Perfetto / chrome://tracing)",
    )
    parser.add_argument(
        "--spans",
        metavar="PATH",
        default=None,
        help="write the recorded spans as JSONL here",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the session's metrics summary after the run",
    )


def _make_faults(
    args: argparse.Namespace,
) -> "Tuple[Optional[FaultPlan], Optional[RecoveryPolicy]]":
    """(fault plan, recovery policy) from the CLI flags, or Nones."""
    from repro.faults import (
        DEFAULT_RECOVERY,
        FaultError,
        FaultPlan,
        FaultSpec,
        RecoveryPolicy,
    )

    if args.faults is None and args.max_retries is None:
        return None, None
    try:
        spec = (
            FaultSpec.parse(args.faults) if args.faults else FaultSpec()
        )
    except FaultError as exc:
        raise SystemExit(f"error: invalid --faults spec: {exc}")
    recovery = (
        dataclasses.replace(
            DEFAULT_RECOVERY, max_retries=args.max_retries
        )
        if args.max_retries is not None
        else DEFAULT_RECOVERY
    )
    return FaultPlan(spec), recovery


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--query",
        choices=sorted(_QUERIES),
        default="Q3",
        help="TPC-H evaluation query",
    )
    _add_planner_options(parser)


def _add_planner_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale-factor",
        type=float,
        default=100.0,
        help="TPC-H scale factor",
    )
    parser.add_argument(
        "--planner",
        choices=[kind.value for kind in PlannerKind],
        default=PlannerKind.SELINGER.value,
        help="join-order search algorithm",
    )
    parser.add_argument(
        "--resource-method",
        choices=[m.value for m in ResourcePlanningMethod],
        default=ResourcePlanningMethod.HILL_CLIMB.value,
        help="resource-planning search",
    )
    parser.add_argument(
        "--containers",
        type=int,
        default=100,
        help="cluster capacity: maximum concurrent containers",
    )
    parser.add_argument(
        "--container-gb",
        type=float,
        default=10.0,
        help="cluster capacity: maximum container memory (GB)",
    )
    parser.add_argument(
        "--baseline",
        action="store_true",
        help="use the two-step baseline instead of RAQO",
    )
    parser.add_argument(
        "--objective",
        default=None,
        metavar="OBJECTIVE",
        help=f"planning objective: {OBJECTIVE_SPECS}",
    )


def _make_session(
    args: argparse.Namespace, seed: int = 0
) -> RaqoSession:
    """Build the facade session the CLI flags describe.

    A tracer is attached only when an export flag asks for one, so
    untraced invocations keep the null-tracer fast path.
    """
    cluster = ClusterConditions(
        max_containers=args.containers,
        max_container_gb=args.container_gb,
    )
    wants_trace = bool(
        getattr(args, "trace", None)
        or getattr(args, "spans", None)
        or getattr(args, "metrics", False)
        or getattr(args, "trace_dir", None)
    )
    return RaqoSession(
        cluster=cluster,
        seed=seed,
        scale_factor=args.scale_factor,
        planner=PlannerKind(args.planner),
        resource_method=ResourcePlanningMethod(args.resource_method),
        resource_aware=not args.baseline,
        objective=getattr(args, "parsed_objective", None),
        tracer=Tracer(seed=seed) if wants_trace else None,
    )


def _export_trace(session: RaqoSession, args: argparse.Namespace) -> None:
    """Honour the --trace/--spans/--metrics export flags."""
    if getattr(args, "trace", None):
        session.write_trace(args.trace)
        print(f"trace written: {args.trace} (open in Perfetto)")
    if getattr(args, "spans", None):
        count = session.write_spans(args.spans)
        print(f"spans written: {args.spans} ({count} spans)")
    if getattr(args, "metrics", False):
        print()
        print(session.metrics.render_text("session metrics"))


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.analysis.plan_checks import validate_plan

    session = _make_session(args)
    planner = session.planner
    result = session.plan(args.query)
    # Every emitted plan passes the runtime well-formedness checker
    # before it is shown (tree shape, arity, by-name resource bounds).
    validate_plan(
        result.plan,
        cluster=planner.cluster,
        require_resources=planner.resource_aware,
    )
    print(result.plan.explain())
    print(
        f"predicted time: {result.cost.time_s:.1f} s | "
        f"monetary: ${result.cost.money:.3f} | "
        f"planning: {result.wall_time_s * 1000:.1f} ms | "
        f"resource configurations explored: "
        f"{result.resource_iterations} | plan invariants: ok"
    )
    if (
        isinstance(result, ParetoPlanningResult)
        and result.frontier is not None
        and len(result.frontier)
    ):
        frontier = result.frontier
        print(
            f"objective: {result.objective} | frontier: "
            f"{len(frontier)} points "
            f"({frontier.points[0].time_s:.1f} s/"
            f"${frontier.points[0].money:.3f} fastest .. "
            f"{frontier.points[-1].time_s:.1f} s/"
            f"${frontier.points[-1].money:.3f} cheapest) | "
            f"dominated pruned: {frontier.dominated_pruned}"
        )
    return 0


def _cmd_execute(args: argparse.Namespace) -> int:
    session = _make_session(args)
    faults, recovery = _make_faults(args)
    result = session.run(
        args.query, faults=faults, recovery=recovery
    )
    run = result.execution
    print(result.planning.plan.explain())
    print(
        f"simulated execution: {run.time_s:.1f} s | "
        f"{run.tb_seconds:.2f} TB*s | ${run.dollars:.3f}"
    )
    if faults is not None:
        print(
            f"faults: {run.faults_injected} injected | "
            f"{run.retries} retries | "
            f"{run.degraded_stages} degraded stage(s) | "
            f"{run.speculative_stages} speculative | "
            f"{'feasible' if run.feasible else 'FAILED'}"
        )
    if not args.baseline:
        baseline = RaqoSession(
            session.catalog,
            cluster=session.cluster,
            resource_aware=False,
        )
        baseline_run = baseline.run(
            args.query, faults=faults, recovery=recovery
        ).execution
        speedup = baseline_run.time_s / run.time_s
        print(
            f"two-step baseline: {baseline_run.time_s:.1f} s "
            f"(RAQO speedup {speedup:.2f}x)"
        )
    _export_trace(session, args)
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.workloads.generator import WorkloadSpec, generate_workload

    if args.parallel < 1:
        print("--parallel must be >= 1", file=sys.stderr)
        return 2
    if args.procs < 0:
        print("--procs must be >= 0", file=sys.stderr)
        return 2
    if args.procs and args.parallel > 1:
        print(
            "--procs and --parallel/--workers are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    session = _make_session(args, seed=args.seed)
    faults, recovery = _make_faults(args)
    queries = generate_workload(
        session.catalog,
        WorkloadSpec(num_queries=args.num_queries),
        np.random.default_rng(args.seed),
    )
    report = session.workload(
        queries,
        parallel=args.parallel,
        processes=args.procs,
        label="baseline" if args.baseline else "raqo",
        faults=faults,
        recovery=recovery,
    )
    for outcome in report.outcomes:
        print(
            f"{outcome.query.name:>12}: "
            f"planning {outcome.planning_ms:8.1f} ms | "
            f"{outcome.resource_iterations:6d} resource iters | "
            f"simulated {outcome.executed_time_s:8.1f} s | "
            f"${outcome.executed_dollars:.3f}"
        )
    print(
        f"\n{report.label}: {len(report.outcomes)} queries "
        + (
            f"({args.procs} process(es)) | "
            if args.procs
            else f"({args.parallel} worker(s)) | "
        )
        +
        f"planning {report.total_planning_ms:.1f} ms | "
        f"{report.total_resource_iterations} resource iters | "
        f"simulated {report.total_executed_time_s:.1f} s | "
        f"${report.total_dollars:.3f}"
    )
    if faults is not None:
        print(
            f"faults: {report.total_faults_injected} injected | "
            f"{report.total_retries} retries | "
            f"{report.total_degraded_stages} degraded | "
            f"{report.infeasible_queries} failed quer(ies)"
        )
    if args.trace_dir:
        written = session.write_trace_dir(
            args.trace_dir, title=f"workload ({report.label})"
        )
        print(
            "trace bundle written: "
            + ", ".join(str(p) for _, p in sorted(written.items()))
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import contextlib

    from repro.obs.prometheus import MetricsServer, parse_metrics_addr
    from repro.serving import PlanRequest

    if args.requests < 1:
        print("--requests must be >= 1", file=sys.stderr)
        return 2
    if args.tenants < 1:
        print("--tenants must be >= 1", file=sys.stderr)
        return 2
    session = _make_session(args)
    service = _make_service(session, args)
    scrape: contextlib.AbstractContextManager[object]
    if args.metrics_addr:
        try:
            host, port = parse_metrics_addr(args.metrics_addr)
        except ValueError as error:
            print(error, file=sys.stderr)
            return 2
        server = MetricsServer(host, port, session.exposition)
        bound_host, bound_port = server.address
        print(
            f"metrics endpoint: "
            f"http://{bound_host}:{bound_port}/metrics"
        )
        scrape = server
    else:
        scrape = contextlib.nullcontext()
    names = sorted(_QUERIES)
    with scrape, service:
        futures = [
            service.submit(
                PlanRequest(
                    request_id=index,
                    query=names[index % len(names)],
                    tenant=f"tenant-{index % args.tenants}",
                )
            )
            for index in range(args.requests)
        ]
        for future in futures:
            response = future.result()
            source = (
                "cache hit"
                if response.cache_hit
                else "coalesced"
                if response.coalesced
                else "planned"
            )
            print(
                f"#{response.request.request_id:04d} "
                f"{response.request.tenant:>10} "
                f"{response.result.query.name:>4}: {source:>9} | "
                f"{response.latency_ms:8.2f} ms "
                f"(queued {response.queue_ms:.2f} ms, "
                f"batch of {response.batch_size})"
            )
    cache = service.cache
    if cache is not None:
        snap = cache.snapshot()
        print(
            f"\ncache: {snap['hits']} hits / {snap['misses']} misses "
            f"(rate {cache.hit_rate:.2f}) | {snap['entries']} entries "
            f"across {snap['shards']} shards | "
            f"{snap['evictions']} evictions"
        )
    if args.metrics:
        print()
        print(session.metrics.render_text("session metrics"))
    _export_telemetry(session, args)
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    import json

    from repro.serving import ReplayConfig, build_requests, replay

    if args.num_requests < 1:
        print("--num-requests must be >= 1", file=sys.stderr)
        return 2
    if args.tenants < 1:
        print("--tenants must be >= 1", file=sys.stderr)
        return 2
    session = _make_session(args, seed=args.seed)
    service = _make_service(session, args)
    config = ReplayConfig(
        num_requests=args.num_requests,
        arrival=args.arrival,
        num_tenants=args.tenants,
        seed=args.seed,
    )
    requests = build_requests(config, catalog=session.catalog)
    with service:
        report = replay(
            service,
            requests,
            label=args.arrival,
            time_scale=args.time_scale,
        )
    print(
        f"{report.label}: {report.completed}/{report.requests} "
        f"completed ({report.rejected} rejected) | "
        f"{report.qps:.0f} qps over {report.elapsed_s:.2f} s"
    )
    print(
        f"latency: p50 {report.latency_ms['p50']:.2f} ms | "
        f"p95 {report.latency_ms['p95']:.2f} ms | "
        f"p99 {report.latency_ms['p99']:.2f} ms | "
        f"max {report.latency_ms['max']:.2f} ms"
    )
    if report.cache:
        print(
            f"cache: {report.cache_hits} request hits | "
            f"{report.coalesced} coalesced | "
            f"hit rate {float(report.cache['hit_rate']):.2f} | "
            f"{report.cache['entries']} entries"
        )
    for row in report.tenants:
        quantiles = row["latency_ms"]
        assert isinstance(quantiles, dict)
        print(
            f"tenant {str(row['tenant']):>10}: "
            f"{row['completed']:>4} completed | "
            f"{row['rejected']:>3} rejected | "
            f"{row['cache_hits']:>4} hits | "
            f"p50 {float(quantiles['p50']):8.2f} ms | "
            f"p95 {float(quantiles['p95']):8.2f} ms | "
            f"p99 {float(quantiles['p99']):8.2f} ms"
        )
    if args.output:
        payload = report.to_json_dict()
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"report written: {args.output}")
    _export_telemetry(session, args)
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    from repro.obs.dashboard import render_dashboard_from_files

    if args.events is None and args.stats is None:
        print(
            "top needs --events FILE and/or --stats FILE",
            file=sys.stderr,
        )
        return 2
    if args.interval <= 0:
        print("--interval must be > 0", file=sys.stderr)
        return 2

    def render_once() -> None:
        print(
            render_dashboard_from_files(
                events_path=args.events, stats_path=args.stats
            )
        )

    if not args.follow:
        render_once()
        return 0
    rendered = 0
    try:
        while True:
            render_once()
            rendered += 1
            if args.iterations and rendered >= args.iterations:
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import main as lint_main
    from repro.analysis.plan_checks import validate_plan

    argv: List[str] = list(args.paths)
    for selector in args.rule or ():
        argv.extend(["--rule", selector])
    if args.list_rules:
        argv.append("--list-rules")
    if args.format != "text":
        argv.extend(["--format", args.format])
    if args.no_suppress:
        argv.append("--no-suppress")
    if args.sarif:
        argv.extend(["--sarif", args.sarif])
    if args.baseline:
        argv.extend(["--baseline", args.baseline])
    if args.update_baseline:
        argv.append("--update-baseline")
    if args.graph:
        argv.append("--graph")
    status = lint_main(argv)
    if args.plans and not args.list_rules:
        planner = RaqoPlanner.default(tpch.tpch_catalog(100))
        for query in tpch.EVALUATION_QUERIES:
            result = planner.optimize(query)
            validate_plan(
                result.plan,
                cluster=planner.cluster,
                require_resources=True,
            )
        print(
            f"plan invariants: ok "
            f"({len(tpch.EVALUATION_QUERIES)} evaluation queries)"
        )
    return status


def _cmd_figure(args: argparse.Namespace) -> int:
    module = importlib.import_module(FIGURE_MODULES[args.name])
    module.main()
    return 0


def _cmd_trees(args: argparse.Namespace) -> int:
    from repro.core.rules import DefaultThresholdRule
    from repro.experiments import fig11_raqo_trees

    profile = HIVE_PROFILE if args.engine == "hive" else SPARK_PROFILE
    print(f"=== default tree ({args.engine}) ===")
    print(
        DefaultThresholdRule(
            profile.default_broadcast_threshold_gb
        ).export_text()
    )
    print(f"\n=== RAQO tree ({args.engine}) ===")
    result = fig11_raqo_trees.run(profile)
    print(result.rule.export_text())
    print(
        f"max path length: {result.max_path_length}, "
        f"accuracy: {result.training_accuracy:.3f}"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    # Validate --objective centrally: every planning command shares the
    # flag, and a malformed value is a usage error (exit 2), exactly
    # like --tenants.
    args.parsed_objective = None
    if getattr(args, "objective", None):
        try:
            args.parsed_objective = PlanObjective.parse(args.objective)
        except ValueError as error:
            print(error, file=sys.stderr)
            return 2
    handlers = {
        "plan": _cmd_plan,
        "execute": _cmd_execute,
        "run": _cmd_execute,
        "figure": _cmd_figure,
        "trees": _cmd_trees,
        "workload": _cmd_workload,
        "serve": _cmd_serve,
        "replay": _cmd_replay,
        "top": _cmd_top,
        "lint": _cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
