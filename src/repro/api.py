"""The stable public facade: one session object over the whole stack.

Everything the CLI, the experiment drivers, and downstream users need --
planning, simulated execution, workloads, explanations, tracing, and
metrics -- hangs off one :class:`RaqoSession`::

    from repro.api import RaqoSession

    session = RaqoSession(scale_factor=100)
    result = session.run("Q3")
    print(result.planning.plan.explain())
    print(result.execution.time_s)

The session owns a :class:`~repro.obs.metrics.MetricsRegistry` and
(optionally) a :class:`~repro.obs.tracing.Tracer`; every call records
the paper's headline counters (resource iterations, cache behaviour,
fault recovery) plus a per-operator predicted-vs-simulated cost-error
histogram, and the recorded spans export to Chrome trace / JSONL via
:meth:`RaqoSession.write_trace` and friends.

Compatibility contract: the names exported here (see ``__all__``) are
the supported surface.  Deeper imports (``repro.core.raqo`` etc.) keep
working but may reorganise between releases; this module will not.
"""

from __future__ import annotations

import math
import types
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Sequence,
    Union,
)

if TYPE_CHECKING:
    from repro.serving.service import OptimizerService, ServiceConfig

from repro.catalog import tpch
from repro.catalog.queries import Query
from repro.catalog.schema import Catalog
from repro.cluster.cluster import ClusterConditions
from repro.cluster.containers import ResourceConfiguration
from repro.core.explain import explain as _explain
from repro.core.pareto import ParetoPlanningResult, PlanObjective
from repro.core.raqo import (
    DEFAULT_QO_RESOURCES,
    PlannerKind,
    RaqoPlanner,
    ResourcePlanningMethod,
)
from repro.engine.executor import ExecutionResult, execute_plan
from repro.engine.profiles import EngineProfile, HIVE_PROFILE
from repro.faults.model import FaultPlan, FaultSpec
from repro.faults.recovery import DEFAULT_RECOVERY, RecoveryPolicy
from repro.obs.export import (
    export_spans_jsonl,
    render_text_report,
    write_chrome_trace,
    write_trace_dir,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import prometheus_exposition, write_stats_file
from repro.obs.telemetry import TelemetryPlane
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.planner.cost_interface import PlanningResult
from repro.workloads.runner import WorkloadReport, WorkloadRunner

__all__ = [
    "PlanObjective",
    "QueryLike",
    "RaqoSession",
    "RunResult",
]

#: Queries are accepted as objects or as TPC-H evaluation-query names.
QueryLike = Union[Query, str]

#: Fault injection is accepted pre-built or as a ``key=value`` spec
#: string (the CLI's ``--faults`` format).
FaultsLike = Union[FaultPlan, FaultSpec, str]

_TPCH_QUERIES = types.MappingProxyType(
    {q.name: q for q in tpch.EVALUATION_QUERIES}
)


@dataclass(frozen=True)
class RunResult:
    """Planning plus simulated execution for one query."""

    planning: PlanningResult
    execution: ExecutionResult

    @property
    def query(self) -> Query:
        """The optimized query."""
        return self.planning.query

    @property
    def predicted_time_s(self) -> float:
        """The optimizer's predicted execution time."""
        return self.planning.cost.time_s

    @property
    def simulated_time_s(self) -> float:
        """What the engine simulator actually charged."""
        return self.execution.time_s

    @property
    def prediction_error(self) -> float:
        """Relative cost-model error, ``|predicted - simulated| /
        simulated`` (``inf`` when the run never finished)."""
        if (
            not math.isfinite(self.simulated_time_s)
            or self.simulated_time_s <= 0.0
            or not math.isfinite(self.predicted_time_s)
        ):
            return math.inf
        return (
            abs(self.predicted_time_s - self.simulated_time_s)
            / self.simulated_time_s
        )


class RaqoSession:
    """The one-object entry point to the RAQO reproduction.

    ``catalog``, ``profile``, and ``cluster`` configure the world the
    session plans against (defaults: TPC-H at ``scale_factor``, the
    Hive profile, the paper's 100 x 10 GB cluster); everything else is
    keyword-only.  Pass a :class:`~repro.obs.tracing.Tracer` to record
    spans for every call made through the session -- the same tracer is
    shared with planner clones, so parallel workloads land in one trace.
    """

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        profile: EngineProfile = HIVE_PROFILE,
        cluster: Optional[ClusterConditions] = None,
        *,
        seed: int = 0,
        tracer: Optional[Tracer] = None,
        scale_factor: float = 100.0,
        planner: PlannerKind = PlannerKind.SELINGER,
        resource_method: ResourcePlanningMethod = (
            ResourcePlanningMethod.HILL_CLIMB
        ),
        resource_aware: bool = True,
        objective: Optional[PlanObjective] = None,
        money_weight: Optional[float] = None,
        default_resources: ResourceConfiguration = DEFAULT_QO_RESOURCES,
    ) -> None:
        self.catalog = (
            catalog
            if catalog is not None
            else tpch.tpch_catalog(scale_factor)
        )
        self.profile = profile
        self.seed = seed
        self.tracer: Tracer = (
            tracer if tracer is not None else NULL_TRACER
        )
        self.metrics = MetricsRegistry()
        #: The v2 telemetry plane: windowed series, the structured
        #: event log, per-tenant SLO trackers, and the cost-model
        #: drift monitor, all shared by everything the session runs.
        self.telemetry = TelemetryPlane(metrics=self.metrics)
        #: Cumulative simulated seconds across this session's runs --
        #: the sim-clock timeline drift observations are stamped on.
        self._sim_elapsed_s = 0.0
        self.default_resources = default_resources
        planner_kwargs = dict(
            planner_kind=planner,
            resource_method=resource_method,
            resource_aware=resource_aware,
            # money_weight= forwards so the planner's deprecation shim
            # warns once with the migration message; objective= is the
            # supported spelling.
            objective=objective,
            money_weight=money_weight,
            default_resources=default_resources,
            seed=seed,
            tracer=self.tracer,
        )
        if cluster is not None:
            planner_kwargs["cluster"] = cluster
        self.planner = RaqoPlanner(self.catalog, **planner_kwargs)
        self.objective = self.planner.objective
        self.cluster = self.planner.cluster
        #: Per-call ``objective=`` overrides plan on cached clones of
        #: the session planner (one per distinct objective).
        self._objective_planners: Dict[str, RaqoPlanner] = {}

    # -- query resolution --------------------------------------------------

    def resolve_query(self, query: QueryLike) -> Query:
        """Accept a :class:`Query` or a TPC-H evaluation-query name."""
        if isinstance(query, Query):
            return query
        try:
            return _TPCH_QUERIES[query]
        except KeyError:
            known = ", ".join(sorted(_TPCH_QUERIES))
            raise KeyError(
                f"unknown query {query!r}; TPC-H evaluation queries "
                f"are: {known}"
            ) from None

    def _resolve_faults(
        self, faults: Optional[FaultsLike]
    ) -> Optional[FaultPlan]:
        if faults is None or isinstance(faults, FaultPlan):
            return faults
        if isinstance(faults, FaultSpec):
            return FaultPlan(faults)
        return FaultPlan(FaultSpec.parse(faults))

    def _planner_for(
        self, objective: Optional[PlanObjective]
    ) -> RaqoPlanner:
        """The session planner, re-targeted at a per-call objective.

        Clones are cached by objective fingerprint, so repeated calls
        with the same override reuse one planner (and its warm model).
        """
        if objective is None or objective == self.planner.objective:
            return self.planner
        key = objective.fingerprint()
        planner = self._objective_planners.get(key)
        if planner is None:
            planner = self.planner.with_objective(objective)
            self._objective_planners[key] = planner
        return planner

    # -- the four verbs ----------------------------------------------------

    def plan(
        self,
        query: QueryLike,
        *,
        objective: Optional[PlanObjective] = None,
    ) -> PlanningResult:
        """Jointly optimize one query; records planning metrics.

        ``objective`` overrides the session objective for this call::

            session.plan("Q3", objective=PlanObjective.cheapest())
        """
        result = self._planner_for(objective).optimize(
            self.resolve_query(query)
        )
        self._record_planning(result)
        return result

    def run(
        self,
        query: QueryLike,
        *,
        objective: Optional[PlanObjective] = None,
        faults: Optional[FaultsLike] = None,
        recovery: Optional[RecoveryPolicy] = None,
    ) -> RunResult:
        """Optimize and simulate one query end to end.

        ``faults`` turns on deterministic fault injection (accepts a
        plan, a spec, or the CLI's ``"seed=7,oom=0.2"`` string); the
        default recovery policy applies whenever faults are injected.
        ``objective`` overrides the session objective for this call.
        """
        planning = self.plan(query, objective=objective)
        fault_plan = self._resolve_faults(faults)
        if recovery is None and fault_plan is not None:
            recovery = DEFAULT_RECOVERY
        execution = execute_plan(
            planning.plan,
            self.planner.estimator,
            self.profile,
            default_resources=self.default_resources,
            faults=fault_plan,
            recovery=recovery,
            tracer=self.tracer,
            telemetry=self.telemetry,
            sim_epoch_s=self._sim_elapsed_s,
        )
        self._record_execution(execution)
        return RunResult(planning=planning, execution=execution)

    def workload(
        self,
        queries: Sequence[QueryLike],
        *,
        objective: Optional[PlanObjective] = None,
        parallel: int = 1,
        processes: int = 0,
        label: str = "workload",
        faults: Optional[FaultsLike] = None,
        recovery: Optional[RecoveryPolicy] = None,
    ) -> WorkloadReport:
        """Plan and simulate a batch of queries, optionally in parallel.

        ``parallel`` > 1 shards queries across *threads* (cheap to spin
        up; wins when planning time is dominated by numpy kernels that
        release the GIL). ``processes`` > 0 shards across a *process
        pool* instead (wins for GIL-bound planning on multi-core
        machines; pays a pool startup cost). The two are mutually
        exclusive; results are bit-identical to a serial run either
        way.
        """
        resolved = [self.resolve_query(q) for q in queries]
        fault_plan = self._resolve_faults(faults)
        if recovery is None and fault_plan is not None:
            recovery = DEFAULT_RECOVERY
        runner = WorkloadRunner(
            self._planner_for(objective),
            self.profile,
            default_resources=self.default_resources,
            faults=fault_plan,
            recovery=recovery,
            telemetry=self.telemetry,
        )
        report = runner.run(
            resolved,
            label=label,
            max_workers=parallel,
            processes=processes,
        )
        self._record_workload(report)
        return report

    def explain(self, query: QueryLike) -> str:
        """Optimize and render the full joint-plan explanation."""
        return _explain(self.planner, self.resolve_query(query))

    def serve(
        self, config: Optional["ServiceConfig"] = None, **knobs: object
    ) -> "OptimizerService":
        """A multi-tenant optimizer service over this session.

        Pass a full :class:`~repro.serving.service.ServiceConfig` or
        individual knobs (``workers=4, max_queue=256, ...``).  The
        service plans on clones of this session's planner, shares its
        tracer, and registers its cache and latency instruments on this
        session's metrics registry -- so
        :meth:`metrics_snapshot` reports serving cache hits, misses,
        evictions, and live entries alongside the planning counters.
        Call :meth:`~repro.serving.service.OptimizerService.start` (or
        use the service as a context manager) before awaiting plans.
        """
        from repro.serving.service import OptimizerService, ServiceConfig

        if config is not None and knobs:
            raise ValueError(
                "pass a ServiceConfig or individual knobs, not both"
            )
        if config is None:
            config = ServiceConfig(**knobs)  # type: ignore[arg-type]
        return OptimizerService(self, config)

    # -- metrics -----------------------------------------------------------

    def _record_planning(self, result: PlanningResult) -> None:
        counters = result.counters
        self.metrics.increment_many(
            {
                "planning.queries": 1,
                "planning.resource_iterations": (
                    counters.resource_iterations
                ),
                "planning.join_costings": counters.join_costings,
                "planning.cache_hits": counters.cache_hits,
                "planning.cache_misses": counters.cache_misses,
                "planning.memo_hits": counters.memo_hits,
                "planner.batched_calls": counters.batched_calls,
                "planner.batch_memo_hits": counters.batch_memo_hits,
            }
        )
        self.metrics.histogram("planning.wall_ms").observe(
            result.wall_time_s * 1000.0
        )
        if (
            isinstance(result, ParetoPlanningResult)
            and result.frontier is not None
        ):
            self.metrics.histogram("planner.frontier_size").observe(
                float(len(result.frontier))
            )
            self.metrics.increment_many(
                {
                    "planner.dominated_pruned": (
                        result.frontier.dominated_pruned
                    ),
                }
            )
        if result.batch_sizes:
            histogram = self.metrics.histogram("planner.batch_size")
            for size in result.batch_sizes:
                histogram.observe(float(size))

    def _record_execution(self, execution: ExecutionResult) -> None:
        self.metrics.increment_many(
            {
                "execution.runs": 1,
                "execution.retries": execution.retries,
                "execution.faults_injected": execution.faults_injected,
                "execution.degraded_stages": execution.degraded_stages,
                "execution.speculative_stages": (
                    execution.speculative_stages
                ),
                "execution.infeasible": (
                    0 if execution.feasible else 1
                ),
            }
        )
        if execution.feasible:
            self.metrics.histogram("execution.time_s").observe(
                execution.time_s
            )
            self._sim_elapsed_s += execution.time_s
        self._record_cost_errors(execution)

    def _record_cost_errors(self, execution: ExecutionResult) -> None:
        """Per-operator predicted-vs-simulated relative time error.

        Each error also feeds the telemetry plane: the windowed
        ``execution.cost_error_rel`` series (sim clock) and the
        cost-model :class:`~repro.obs.drift.DriftMonitor`, which emits
        ``cost_model_drift`` events when calibration decays online.
        """
        histogram = self.metrics.histogram("execution.cost_error_rel")
        windowed = self.telemetry.windowed_histogram(
            "execution.cost_error_rel", clock="sim"
        )
        model = self.planner.cost_model
        estimator = self.planner.estimator
        for report in execution.joins:
            if not report.feasible or report.time_s <= 0.0:
                continue
            small_gb, large_gb = estimator.join_io_gb(
                report.left_tables, report.right_tables
            )
            predicted = model.predict_time(
                report.algorithm, small_gb, large_gb, report.resources
            )
            if not math.isfinite(predicted):
                continue
            error = abs(predicted - report.time_s) / report.time_s
            histogram.observe(error)
            windowed.observe(error, ts_s=self._sim_elapsed_s)
            self.telemetry.drift.record(
                error, ts_s=self._sim_elapsed_s
            )

    def _record_workload(self, report: WorkloadReport) -> None:
        self.metrics.increment_many(
            {
                "workload.batches": 1,
                "workload.queries": len(report.outcomes),
                "workload.infeasible": report.infeasible_queries,
                "execution.retries": report.total_retries,
                "execution.faults_injected": (
                    report.total_faults_injected
                ),
                "execution.degraded_stages": (
                    report.total_degraded_stages
                ),
                "planning.resource_iterations": (
                    report.total_resource_iterations
                ),
                "planning.cache_hits": report.cache_hit_total,
            }
        )
        for outcome in report.outcomes:
            if outcome.executed_feasible and math.isfinite(
                outcome.executed_time_s
            ):
                self.metrics.histogram("execution.time_s").observe(
                    outcome.executed_time_s
                )

    def metrics_snapshot(self) -> Dict[str, object]:
        """The registry's deterministic, JSON-ready snapshot."""
        return self.metrics.snapshot()

    def telemetry_snapshot(
        self, clock: Optional[str] = None
    ) -> Dict[str, object]:
        """The telemetry plane's deterministic snapshot.

        ``clock="sim"`` restricts to the simulated-clock series, whose
        snapshots are byte-identical for same-seed runs regardless of
        parallelism.
        """
        return self.telemetry.snapshot(clock=clock)

    def exposition(self) -> str:
        """The Prometheus text-format exposition of all metrics."""
        return prometheus_exposition(self.metrics, self.telemetry)

    def write_stats_file(self, path: Union[str, Path]) -> Path:
        """Write the Prometheus exposition to ``path``."""
        write_stats_file(path, self.metrics, self.telemetry)
        return Path(path)

    def write_events(self, path: Union[str, Path]) -> int:
        """Write the unified event log as JSONL; returns event count.

        Span events recorded by the engine (faults, retries,
        degradations, speculation) are harvested into the stream first,
        so the file carries the whole story, span-ID-correlated.
        """
        self.telemetry.events.harvest_tracer(self.tracer)
        return self.telemetry.events.write_jsonl(path)

    # -- trace export ------------------------------------------------------

    def write_trace(self, path: Union[str, Path]) -> Path:
        """Write the recorded spans as Chrome ``trace_event`` JSON."""
        destination = Path(path)
        write_chrome_trace(self.tracer, destination, metrics=self.metrics)
        return destination

    def write_spans(self, path: Union[str, Path]) -> int:
        """Write the recorded spans as JSONL; returns the span count."""
        return export_spans_jsonl(self.tracer, path)

    def write_trace_dir(
        self, directory: Union[str, Path], title: str = "raqo session"
    ) -> Dict[str, Path]:
        """Write trace.json + spans.jsonl + report.txt + metrics.json."""
        return write_trace_dir(
            self.tracer, directory, metrics=self.metrics, title=title
        )

    def report(self) -> str:
        """Plain-text span tree plus the metrics summary."""
        lines: List[str] = [render_text_report(self.tracer)]
        rendered = self.metrics.render_text()
        if rendered:
            lines.extend(["", rendered])
        return "\n".join(lines)
