"""RAQO: joint Resource And Query Optimization for big data systems.

This package reproduces *"Query and Resource Optimization: Bridging the
Gap"* (ICDE 2018; arXiv:1906.06590 preprint "Query and Resource
Optimizations: A Case for Breaking the Wall in Big Data Systems").

The package is organised bottom-up:

- :mod:`repro.catalog` -- schemas, statistics, join graphs, TPC-H and
  random schema generators, query definitions.
- :mod:`repro.cluster` -- the YARN-like cluster substrate: containers,
  cluster conditions, a queueing resource manager, pricing.
- :mod:`repro.engine` -- an analytic Hive/Spark-like dataflow execution
  simulator (stage DAGs, calibrated SMJ/BHJ join time models, profiling).
- :mod:`repro.planner` -- query planners: Selinger dynamic programming and
  the FastRandomized multi-objective planner, plus plan representations.
- :mod:`repro.core` -- the paper's contribution: learned cost models,
  resource planning (brute force / hill climbing / plan cache), rule-based
  RAQO decision trees, and the joint RAQO planner.
- :mod:`repro.experiments` -- one driver per figure in the paper.

Quickstart::

    from repro import tpch
    from repro.core.raqo import RaqoPlanner

    catalog = tpch.tpch_catalog(scale_factor=100)
    planner = RaqoPlanner.default(catalog)
    result = planner.optimize(tpch.QUERY_Q3)
    print(result.plan.explain())
"""

from repro.catalog import tpch
from repro.catalog.queries import Query
from repro.cluster.cluster import ClusterConditions
from repro.cluster.containers import ResourceConfiguration
from repro.core.raqo import RaqoPlanner

__all__ = [
    "ClusterConditions",
    "Query",
    "RaqoPlanner",
    "ResourceConfiguration",
    "tpch",
]

__version__ = "1.0.0"
