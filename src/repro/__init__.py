"""RAQO: joint Resource And Query Optimization for big data systems.

This package reproduces *"Query and Resource Optimization: Bridging the
Gap"* (ICDE 2018; arXiv:1906.06590 preprint "Query and Resource
Optimizations: A Case for Breaking the Wall in Big Data Systems").

The package is organised bottom-up:

- :mod:`repro.catalog` -- schemas, statistics, join graphs, TPC-H and
  random schema generators, query definitions.
- :mod:`repro.cluster` -- the YARN-like cluster substrate: containers,
  cluster conditions, a queueing resource manager, pricing.
- :mod:`repro.engine` -- an analytic Hive/Spark-like dataflow execution
  simulator (stage DAGs, calibrated SMJ/BHJ join time models, profiling).
- :mod:`repro.planner` -- query planners: Selinger dynamic programming and
  the FastRandomized multi-objective planner, plus plan representations.
- :mod:`repro.core` -- the paper's contribution: learned cost models,
  resource planning (brute force / hill climbing / plan cache), rule-based
  RAQO decision trees, and the joint RAQO planner.
- :mod:`repro.experiments` -- one driver per figure in the paper.

Quickstart (the stable facade, see :mod:`repro.api`)::

    from repro import RaqoSession

    session = RaqoSession(scale_factor=100)
    result = session.run("Q3")
    print(result.planning.plan.explain())
    print(f"simulated: {result.simulated_time_s:.1f} s")

The deeper modules remain importable (``repro.core.raqo`` and friends),
but :class:`~repro.api.RaqoSession` is the supported public surface.
"""

from repro.api import PlanObjective, RaqoSession, RunResult
from repro.catalog import tpch
from repro.catalog.queries import Query
from repro.cluster.cluster import ClusterConditions
from repro.cluster.containers import ResourceConfiguration
from repro.core.raqo import RaqoPlanner
from repro.obs.tracing import Tracer

__all__ = [
    "ClusterConditions",
    "PlanObjective",
    "Query",
    "RaqoPlanner",
    "RaqoSession",
    "ResourceConfiguration",
    "RunResult",
    "Tracer",
    "tpch",
]

__version__ = "1.0.0"
