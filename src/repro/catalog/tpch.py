"""The TPC-H schema, statistics, join graph, and the paper's four queries.

Cardinalities follow the TPC-H specification scaled by ``scale_factor``
(``region`` and ``nation`` are fixed-size). Row widths are the standard
average widths of the uncompressed tables. Join selectivities follow the
benchmark's PK-FK structure: each edge's selectivity is the reciprocal of
the primary-key side's cardinality, exactly the "same join edges and join
selectivities as specified in the benchmark" setup of the paper's Sec VII.

The paper evaluates four queries on this schema (Sec VII):

- ``QUERY_Q12`` -- orders |><| lineitem (single join),
- ``QUERY_Q3``  -- customer |><| orders |><| lineitem (two joins),
- ``QUERY_Q2``  -- part |><| partsupp |><| supplier |><| nation (three joins),
- ``QUERY_ALL`` -- all eight tables joined.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import List, Mapping

from repro.catalog.join_graph import JoinEdge, JoinGraph
from repro.catalog.queries import Query
from repro.catalog.schema import Catalog, Column, Schema, Table

# The shared tables below are wrapped in read-only views (and the edge
# list is a tuple) so they can be safely shared across the parallel
# workload runner's worker threads (lint rule RAQO005).

#: Base cardinalities at scale factor 1. ``region``/``nation`` do not scale.
_BASE_ROWS: Mapping[str, int] = MappingProxyType({
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,
})

_FIXED_SIZE_TABLES = frozenset({"region", "nation"})

#: Average row widths in bytes (uncompressed), per the TPC-H spec tables.
_ROW_WIDTH: Mapping[str, int] = MappingProxyType({
    "region": 124,
    "nation": 128,
    "supplier": 159,
    "customer": 179,
    "part": 155,
    "partsupp": 144,
    "orders": 121,
    "lineitem": 129,
})

_COLUMNS: Mapping[str, List[Column]] = MappingProxyType({
    "region": [
        Column("r_regionkey", "int", 4),
        Column("r_name", "char(25)", 25),
        Column("r_comment", "varchar(152)", 95),
    ],
    "nation": [
        Column("n_nationkey", "int", 4),
        Column("n_name", "char(25)", 25),
        Column("n_regionkey", "int", 4),
        Column("n_comment", "varchar(152)", 95),
    ],
    "supplier": [
        Column("s_suppkey", "int", 4),
        Column("s_name", "char(25)", 25),
        Column("s_address", "varchar(40)", 25),
        Column("s_nationkey", "int", 4),
        Column("s_phone", "char(15)", 15),
        Column("s_acctbal", "decimal", 8),
        Column("s_comment", "varchar(101)", 78),
    ],
    "customer": [
        Column("c_custkey", "int", 4),
        Column("c_name", "varchar(25)", 25),
        Column("c_address", "varchar(40)", 25),
        Column("c_nationkey", "int", 4),
        Column("c_phone", "char(15)", 15),
        Column("c_acctbal", "decimal", 8),
        Column("c_mktsegment", "char(10)", 10),
        Column("c_comment", "varchar(117)", 88),
    ],
    "part": [
        Column("p_partkey", "int", 4),
        Column("p_name", "varchar(55)", 33),
        Column("p_mfgr", "char(25)", 25),
        Column("p_brand", "char(10)", 10),
        Column("p_type", "varchar(25)", 21),
        Column("p_size", "int", 4),
        Column("p_container", "char(10)", 10),
        Column("p_retailprice", "decimal", 8),
        Column("p_comment", "varchar(23)", 40),
    ],
    "partsupp": [
        Column("ps_partkey", "int", 4),
        Column("ps_suppkey", "int", 4),
        Column("ps_availqty", "int", 4),
        Column("ps_supplycost", "decimal", 8),
        Column("ps_comment", "varchar(199)", 124),
    ],
    "orders": [
        Column("o_orderkey", "int", 4),
        Column("o_custkey", "int", 4),
        Column("o_orderstatus", "char(1)", 1),
        Column("o_totalprice", "decimal", 8),
        Column("o_orderdate", "date", 4),
        Column("o_orderpriority", "char(15)", 15),
        Column("o_clerk", "char(15)", 15),
        Column("o_shippriority", "int", 4),
        Column("o_comment", "varchar(79)", 66),
    ],
    "lineitem": [
        Column("l_orderkey", "int", 4),
        Column("l_partkey", "int", 4),
        Column("l_suppkey", "int", 4),
        Column("l_linenumber", "int", 4),
        Column("l_quantity", "decimal", 8),
        Column("l_extendedprice", "decimal", 8),
        Column("l_discount", "decimal", 8),
        Column("l_tax", "decimal", 8),
        Column("l_returnflag", "char(1)", 1),
        Column("l_linestatus", "char(1)", 1),
        Column("l_shipdate", "date", 4),
        Column("l_commitdate", "date", 4),
        Column("l_receiptdate", "date", 4),
        Column("l_shipinstruct", "char(25)", 25),
        Column("l_shipmode", "char(10)", 10),
        Column("l_comment", "varchar(44)", 27),
    ],
})

#: PK-FK join edges: (fk_table, fk_column, pk_table, pk_column).
_EDGES = (
    ("nation", "n_regionkey", "region", "r_regionkey"),
    ("supplier", "s_nationkey", "nation", "n_nationkey"),
    ("customer", "c_nationkey", "nation", "n_nationkey"),
    ("partsupp", "ps_partkey", "part", "p_partkey"),
    ("partsupp", "ps_suppkey", "supplier", "s_suppkey"),
    ("orders", "o_custkey", "customer", "c_custkey"),
    ("lineitem", "l_orderkey", "orders", "o_orderkey"),
    ("lineitem", "l_partkey", "part", "p_partkey"),
    ("lineitem", "l_suppkey", "supplier", "s_suppkey"),
)

#: Table names in ascending size order at any scale factor.
TABLE_NAMES = tuple(_BASE_ROWS)


def row_count(table: str, scale_factor: float) -> int:
    """TPC-H cardinality of ``table`` at the given scale factor."""
    base = _BASE_ROWS[table]
    if table in _FIXED_SIZE_TABLES:
        return base
    return int(round(base * scale_factor))


def tpch_schema(scale_factor: float = 1.0) -> Schema:
    """Build the eight-table TPC-H schema at ``scale_factor``."""
    if scale_factor <= 0:
        raise ValueError(f"scale_factor must be > 0, got {scale_factor}")
    tables = [
        Table(
            name=name,
            row_count=row_count(name, scale_factor),
            columns=tuple(_COLUMNS[name]),
            row_width_bytes=_ROW_WIDTH[name],
        )
        for name in _BASE_ROWS
    ]
    return Schema(name=f"tpch-sf{scale_factor:g}", tables=tables)


def tpch_join_graph(scale_factor: float = 1.0) -> JoinGraph:
    """Build the TPC-H join graph with PK-FK selectivities."""
    graph = JoinGraph()
    for fk_table, fk_column, pk_table, pk_column in _EDGES:
        pk_rows = row_count(pk_table, scale_factor)
        graph.add_edge(
            JoinEdge(
                left=fk_table,
                right=pk_table,
                selectivity=1.0 / pk_rows,
                left_column=fk_column,
                right_column=pk_column,
            )
        )
    return graph


def tpch_catalog(scale_factor: float = 1.0) -> Catalog:
    """The full TPC-H catalog (schema + join graph) at ``scale_factor``.

    The paper runs its planning evaluation at scale factor 100.
    """
    return Catalog(
        schema=tpch_schema(scale_factor),
        join_graph=tpch_join_graph(scale_factor),
    )


#: Single-join query the paper derives from TPC-H Q12 (Sec III-A).
QUERY_Q12 = Query("Q12", ("orders", "lineitem"))

#: Two-join query the paper derives from TPC-H Q3 (Sec III-B).
QUERY_Q3 = Query("Q3", ("customer", "orders", "lineitem"))

#: Three-join query from TPC-H Q2 (Sec VII).
QUERY_Q2 = Query("Q2", ("part", "partsupp", "supplier", "nation"))

#: All eight TPC-H tables joined (the paper's "All" query).
QUERY_ALL = Query("All", TABLE_NAMES)

#: The evaluation workload of Sec VII, in the paper's order.
EVALUATION_QUERIES = (QUERY_Q12, QUERY_Q3, QUERY_Q2, QUERY_ALL)
