"""Schemas, statistics, join graphs, and workload definitions.

The catalog is the planner-facing view of data: it never materialises rows,
only statistics (cardinalities, row widths, join selectivities), which is all
the paper's planners consume.
"""

from repro.catalog.join_graph import JoinEdge, JoinGraph
from repro.catalog.queries import Query
from repro.catalog.schema import Catalog, Column, Schema, Table
from repro.catalog.statistics import StatisticsEstimator, TableStats

__all__ = [
    "Catalog",
    "Column",
    "JoinEdge",
    "JoinGraph",
    "Query",
    "Schema",
    "StatisticsEstimator",
    "Table",
    "TableStats",
]
