"""Randomly generated schemas, as in the paper's scalability evaluation.

Sec VII: "we generate a random number of tables, each of which have a
randomly picked row size between 100 and 200 bytes, and a randomly picked
number of rows between 100K and 2M. We then randomly generate join edges to
create the join graph (with similar join selectivities as in the TPC-H
schema)."

A random spanning tree guarantees the graph is connected (so queries over
any subset of tables can be made connected), and extra edges are added with
a configurable probability to create richer join graphs. Selectivities
mirror TPC-H's PK-FK structure: ``1 / max(|L|, |R|)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.catalog.join_graph import JoinEdge, JoinGraph
from repro.catalog.queries import Query
from repro.catalog.schema import Catalog, Schema, Table

#: Paper-specified bounds for the random schema generator.
MIN_ROW_WIDTH_BYTES = 100
MAX_ROW_WIDTH_BYTES = 200
MIN_ROW_COUNT = 100_000
MAX_ROW_COUNT = 2_000_000


@dataclass(frozen=True)
class RandomSchemaConfig:
    """Knobs for the random schema generator."""

    num_tables: int
    extra_edge_probability: float = 0.15
    min_row_width_bytes: int = MIN_ROW_WIDTH_BYTES
    max_row_width_bytes: int = MAX_ROW_WIDTH_BYTES
    min_row_count: int = MIN_ROW_COUNT
    max_row_count: int = MAX_ROW_COUNT

    def __post_init__(self) -> None:
        if self.num_tables < 1:
            raise ValueError(f"num_tables must be >= 1, got {self.num_tables}")
        if not 0.0 <= self.extra_edge_probability <= 1.0:
            raise ValueError(
                "extra_edge_probability must be in [0, 1], got "
                f"{self.extra_edge_probability}"
            )
        if self.min_row_width_bytes > self.max_row_width_bytes:
            raise ValueError("min_row_width_bytes > max_row_width_bytes")
        if self.min_row_count > self.max_row_count:
            raise ValueError("min_row_count > max_row_count")


def random_catalog(
    config: RandomSchemaConfig, rng: np.random.Generator
) -> Catalog:
    """Generate a random catalog per the paper's recipe.

    Tables are named ``t000 .. tNNN``. The join graph is a uniform random
    spanning tree (so it is connected) plus independent extra edges with
    probability ``config.extra_edge_probability``.
    """
    tables = []
    for index in range(config.num_tables):
        width = int(
            rng.integers(
                config.min_row_width_bytes, config.max_row_width_bytes + 1
            )
        )
        rows = int(
            rng.integers(config.min_row_count, config.max_row_count + 1)
        )
        tables.append(
            Table(
                name=f"t{index:03d}",
                row_count=rows,
                row_width_bytes=width,
            )
        )
    schema = Schema(name=f"random-{config.num_tables}", tables=tables)

    graph = JoinGraph()
    names = [table.name for table in tables]
    # Random spanning tree: attach each new node to a uniformly chosen
    # already-connected node.
    for index in range(1, len(names)):
        other = names[int(rng.integers(index))]
        _add_pkfk_edge(graph, schema, names[index], other)
    # Extra edges for denser join graphs.
    if config.extra_edge_probability > 0:
        for i in range(len(names)):
            for j in range(i + 1, len(names)):
                if graph.edge_between(names[i], names[j]) is not None:
                    continue
                if rng.random() < config.extra_edge_probability:
                    _add_pkfk_edge(graph, schema, names[i], names[j])
    return Catalog(schema=schema, join_graph=graph)


def _add_pkfk_edge(
    graph: JoinGraph, schema: Schema, left: str, right: str
) -> None:
    """Add an edge with TPC-H-style PK-FK selectivity between two tables."""
    pk_rows = max(
        schema.table(left).row_count, schema.table(right).row_count
    )
    graph.add_edge(
        JoinEdge(left=left, right=right, selectivity=1.0 / pk_rows)
    )


def random_query(
    catalog: Catalog,
    num_tables: int,
    rng: np.random.Generator,
    name: Optional[str] = None,
) -> Query:
    """Generate a random connected query joining ``num_tables`` tables.

    Mirrors the paper's "queries having increasing number of joins, up to
    as many as the number of tables".
    """
    names = catalog.table_names
    if num_tables > len(names):
        raise ValueError(
            f"query size {num_tables} exceeds schema size {len(names)}"
        )
    seed = names[int(rng.integers(len(names)))]
    tables = catalog.join_graph.connected_subset(seed, num_tables, rng)
    query = Query(
        name=name or f"rand-{num_tables}", tables=tuple(tables)
    )
    query.validate(catalog)
    return query


def query_size_sweep(
    catalog: Catalog,
    sizes: Sequence[int],
    rng: np.random.Generator,
) -> List[Query]:
    """One random query per requested size, for the Fig 15(a) sweep."""
    return [
        random_query(catalog, size, rng, name=f"rand-{size}")
        for size in sizes
    ]
