"""Relational schema objects: columns, tables, schemas, and the catalog.

A :class:`Catalog` bundles a :class:`Schema` with its
:class:`~repro.catalog.join_graph.JoinGraph`; it is the single object the
planners and the RAQO optimizer take as input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

BYTES_PER_GB = 1024.0**3
#: Backwards-compatible alias for the byte-count constant.
GB = BYTES_PER_GB


class CatalogError(Exception):
    """Raised for malformed schema or catalog definitions and lookups."""


@dataclass(frozen=True)
class Column:
    """A named, typed column with a fixed average width in bytes."""

    name: str
    dtype: str = "bigint"
    width_bytes: int = 8

    def __post_init__(self) -> None:
        if not self.name:
            raise CatalogError("column name must be non-empty")
        if self.width_bytes <= 0:
            raise CatalogError(
                f"column {self.name!r} width must be positive, "
                f"got {self.width_bytes}"
            )


@dataclass(frozen=True)
class Table:
    """A base table with cardinality and row-width statistics.

    ``row_width_bytes`` defaults to the sum of the column widths when columns
    are given; tables may also be declared with an explicit width and no
    column list (the random schema generator does this).
    """

    name: str
    row_count: int
    columns: Tuple[Column, ...] = ()
    row_width_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise CatalogError("table name must be non-empty")
        if self.row_count < 0:
            raise CatalogError(
                f"table {self.name!r} row_count must be >= 0, "
                f"got {self.row_count}"
            )
        if self.row_width_bytes is None:
            if not self.columns:
                raise CatalogError(
                    f"table {self.name!r} needs columns or an explicit "
                    "row_width_bytes"
                )
            width = sum(col.width_bytes for col in self.columns)
            object.__setattr__(self, "row_width_bytes", width)
        elif self.row_width_bytes <= 0:
            raise CatalogError(
                f"table {self.name!r} row width must be positive, "
                f"got {self.row_width_bytes}"
            )
        names = [col.name for col in self.columns]
        if len(names) != len(set(names)):
            raise CatalogError(f"table {self.name!r} has duplicate columns")

    @property
    def size_bytes(self) -> int:
        """Total estimated on-disk size of the table."""
        assert self.row_width_bytes is not None
        return self.row_count * self.row_width_bytes

    @property
    def size_gb(self) -> float:
        """Total estimated size in GB (1 GB = 2**30 bytes)."""
        return self.size_bytes / BYTES_PER_GB

    def column(self, name: str) -> Column:
        """Return the column with ``name`` or raise :class:`CatalogError`."""
        for col in self.columns:
            if col.name == name:
                return col
        raise CatalogError(f"table {self.name!r} has no column {name!r}")


class Schema:
    """An ordered collection of uniquely named tables."""

    def __init__(self, name: str, tables: Iterable[Table] = ()) -> None:
        self.name = name
        self._tables: Dict[str, Table] = {}
        for table in tables:
            self.add_table(table)

    def add_table(self, table: Table) -> None:
        """Register ``table``; duplicate names raise :class:`CatalogError`."""
        if table.name in self._tables:
            raise CatalogError(f"duplicate table {table.name!r}")
        self._tables[table.name] = table

    def table(self, name: str) -> Table:
        """Return the table called ``name`` or raise :class:`CatalogError`."""
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(
                f"schema {self.name!r} has no table {name!r}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    @property
    def table_names(self) -> List[str]:
        """Names of all tables, in registration order."""
        return list(self._tables)

    @property
    def total_size_gb(self) -> float:
        """Sum of all base table sizes in GB."""
        return sum(table.size_gb for table in self)


@dataclass
class Catalog:
    """A schema together with its join graph.

    This is the unit of input the planners work against; see
    :func:`repro.catalog.tpch.tpch_catalog` for the canonical instance.
    """

    schema: Schema
    join_graph: "JoinGraph" = field(repr=False)  # noqa: F821

    def __post_init__(self) -> None:
        for edge in self.join_graph.edges():
            for name in (edge.left, edge.right):
                if name not in self.schema:
                    raise CatalogError(
                        f"join edge references unknown table {name!r}"
                    )

    def table(self, name: str) -> Table:
        """Shorthand for ``self.schema.table(name)``."""
        return self.schema.table(name)

    @property
    def table_names(self) -> List[str]:
        """Shorthand for ``self.schema.table_names``."""
        return self.schema.table_names
