"""Join graphs: which tables join with which, and how selective the join is.

The paper evaluates on the TPC-H join graph ("we used the same tables and the
same join edges and join selectivities ... as specified in the benchmark")
and on randomly generated join graphs. Both are represented here as an
undirected multigraph-free graph of :class:`JoinEdge` objects, backed by
:mod:`networkx` for connectivity queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set

import networkx as nx


class JoinGraphError(Exception):
    """Raised for malformed join graph definitions and queries."""


@dataclass(frozen=True)
class JoinEdge:
    """An equi-join edge between two tables with a fixed selectivity.

    ``selectivity`` is the classic join selectivity factor: the join output
    cardinality is ``|L| * |R| * selectivity``. For a PK-FK join it is
    ``1 / |PK side|``.
    """

    left: str
    right: str
    selectivity: float
    left_column: str = ""
    right_column: str = ""

    def __post_init__(self) -> None:
        if self.left == self.right:
            raise JoinGraphError(f"self-join edge on {self.left!r}")
        if not 0.0 < self.selectivity <= 1.0:
            raise JoinGraphError(
                f"selectivity must be in (0, 1], got {self.selectivity} "
                f"for {self.left!r}-{self.right!r}"
            )

    @property
    def key(self) -> FrozenSet[str]:
        """Unordered pair identifying the edge."""
        return frozenset((self.left, self.right))

    def touches(self, table: str) -> bool:
        """True when the edge is incident to ``table``."""
        return table in (self.left, self.right)


class JoinGraph:
    """Undirected graph of join edges between named tables."""

    def __init__(self, edges: Iterable[JoinEdge] = ()) -> None:
        self._graph = nx.Graph()
        self._edges: Dict[FrozenSet[str], JoinEdge] = {}
        #: Connectivity answers by table set. The DP planners probe
        #: every subset of every lattice level (often across many
        #: queries over one catalog), and the networkx subgraph + BFS
        #: behind each probe dominates batched planning time. Entries
        #: are idempotent, so concurrent refills by parallel workload
        #: threads are benign; ``add_edge`` invalidates.
        self._connected_cache: Dict[FrozenSet[str], bool] = {}
        for edge in edges:
            self.add_edge(edge)

    def add_edge(self, edge: JoinEdge) -> None:
        """Register a join edge; duplicate pairs raise."""
        if edge.key in self._edges:
            raise JoinGraphError(
                f"duplicate join edge {edge.left!r}-{edge.right!r}"
            )
        self._edges[edge.key] = edge
        self._graph.add_edge(edge.left, edge.right)
        self._connected_cache.clear()

    def edges(self) -> List[JoinEdge]:
        """All join edges in insertion order."""
        return list(self._edges.values())

    def edge_between(self, left: str, right: str) -> Optional[JoinEdge]:
        """The edge joining ``left`` and ``right``, or None."""
        return self._edges.get(frozenset((left, right)))

    def edges_within(self, tables: Iterable[str]) -> List[JoinEdge]:
        """All edges whose both endpoints are in ``tables``."""
        table_set = set(tables)
        return [
            edge
            for edge in self._edges.values()
            if edge.left in table_set and edge.right in table_set
        ]

    def edges_between(
        self, left_tables: Iterable[str], right_tables: Iterable[str]
    ) -> List[JoinEdge]:
        """Edges with one endpoint in each of the two disjoint sets."""
        left_set, right_set = set(left_tables), set(right_tables)
        overlap = left_set & right_set
        if overlap:
            raise JoinGraphError(f"table sets overlap on {sorted(overlap)}")
        result = []
        for edge in self._edges.values():
            crosses = (edge.left in left_set and edge.right in right_set) or (
                edge.left in right_set and edge.right in left_set
            )
            if crosses:
                result.append(edge)
        return result

    def neighbors(self, table: str) -> Set[str]:
        """Tables directly joinable with ``table``."""
        if table not in self._graph:
            return set()
        return set(self._graph.neighbors(table))

    def tables(self) -> Set[str]:
        """All tables mentioned by at least one edge."""
        return set(self._graph.nodes)

    def is_connected(self, tables: Iterable[str]) -> bool:
        """True when ``tables`` induce a connected subgraph.

        Singleton sets are connected; tables absent from the graph make the
        set disconnected (there is no join path to them).
        """
        table_list = list(dict.fromkeys(tables))
        if not table_list:
            raise JoinGraphError("empty table set")
        if len(table_list) == 1:
            return True
        key = frozenset(table_list)
        cached = self._connected_cache.get(key)
        if cached is not None:
            return cached
        if any(table not in self._graph for table in table_list):
            connected = False
        else:
            subgraph = self._graph.subgraph(table_list)
            connected = bool(nx.is_connected(subgraph))
        self._connected_cache[key] = connected
        return connected

    def selectivity_between(
        self, left_tables: Iterable[str], right_tables: Iterable[str]
    ) -> float:
        """Product of selectivities of all edges crossing the two sets.

        Returns 1.0 when no edge crosses (a cross join).
        """
        product = 1.0
        for edge in self.edges_between(left_tables, right_tables):
            product *= edge.selectivity
        return product

    def connected_subset(
        self, seed: str, size: int, rng: "np.random.Generator"  # noqa: F821
    ) -> List[str]:
        """Grow a random connected subset of ``size`` tables from ``seed``.

        Used by the workload generators to produce joinable queries.
        """
        if seed not in self._graph:
            raise JoinGraphError(f"unknown table {seed!r}")
        if size < 1:
            raise JoinGraphError(f"size must be >= 1, got {size}")
        chosen = [seed]
        chosen_set = {seed}
        frontier = sorted(self.neighbors(seed))
        while len(chosen) < size:
            candidates = [t for t in frontier if t not in chosen_set]
            if not candidates:
                raise JoinGraphError(
                    f"cannot grow a connected subset of size {size} "
                    f"from {seed!r}; stuck at {len(chosen)}"
                )
            pick = candidates[int(rng.integers(len(candidates)))]
            chosen.append(pick)
            chosen_set.add(pick)
            frontier = sorted(
                set(frontier) | self.neighbors(pick) - chosen_set
            )
        return chosen

    def __len__(self) -> int:
        return len(self._edges)

    def __iter__(self) -> Iterator[JoinEdge]:
        return iter(self._edges.values())
