"""Query definitions.

Following the paper's evaluation setup, "the queries consist of a set of
relations that need to be joined": a query is a named, connected set of
tables from a catalog.

Filters are expressed as per-table *selectivity factors* -- exactly how
the paper controlled its experiments ("we added a uniform sampling filter
on o_orderkey, which allowed us to select on demand a specific fraction
of the table each time"). A filter factor of 0.3 on ``orders`` means the
query scans 30% of the table's rows; the statistics estimator applies the
factors before any join arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.catalog.schema import Catalog


class QueryError(Exception):
    """Raised for malformed queries."""


@dataclass(frozen=True)
class Query:
    """A join query: relations to join, plus optional scan filters."""

    name: str
    tables: Tuple[str, ...]
    #: (table, selectivity factor) pairs; factors in (0, 1].
    filters: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if not self.tables:
            raise QueryError(f"query {self.name!r} has no tables")
        if len(set(self.tables)) != len(self.tables):
            raise QueryError(f"query {self.name!r} lists duplicate tables")
        object.__setattr__(self, "tables", tuple(self.tables))
        normalized = tuple(sorted(dict(self.filters).items()))
        for table, factor in normalized:
            if table not in self.tables:
                raise QueryError(
                    f"query {self.name!r} filters unknown table "
                    f"{table!r}"
                )
            if not 0.0 < factor <= 1.0:
                raise QueryError(
                    f"query {self.name!r}: filter factor on {table!r} "
                    f"must be in (0, 1], got {factor}"
                )
        object.__setattr__(self, "filters", normalized)

    @property
    def num_joins(self) -> int:
        """Number of binary joins needed (``len(tables) - 1``)."""
        return len(self.tables) - 1

    @property
    def filter_factors(self) -> Dict[str, float]:
        """Per-table scan selectivities as a dict."""
        return dict(self.filters)

    def with_filter(self, table: str, factor: float) -> "Query":
        """A copy with one more (or replaced) scan filter."""
        merged = dict(self.filters)
        merged[table] = factor
        return Query(
            name=self.name,
            tables=self.tables,
            filters=tuple(sorted(merged.items())),
        )

    def validate(self, catalog: Catalog) -> None:
        """Check all tables exist and the query is a connected join.

        Raises :class:`QueryError` when not.
        """
        for table in self.tables:
            if table not in catalog.schema:
                raise QueryError(
                    f"query {self.name!r} references unknown table "
                    f"{table!r}"
                )
        if len(self.tables) > 1 and not catalog.join_graph.is_connected(
            self.tables
        ):
            raise QueryError(
                f"query {self.name!r} is not a connected join "
                f"({self.tables})"
            )


def make_query(
    name: str,
    tables: Iterable[str],
    filters: Optional[Mapping[str, float]] = None,
) -> Query:
    """Convenience constructor accepting any iterables."""
    return Query(
        name=name,
        tables=tuple(tables),
        filters=tuple(sorted((filters or {}).items())),
    )
