"""Cardinality and size estimation over join graphs.

Implements the textbook System-R style estimator the paper's planners rely
on: the cardinality of joining a set of relations is the product of base
cardinalities times the product of the selectivities of all join edges
internal to the set. Sizes combine cardinalities with (joined) row widths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.catalog.join_graph import JoinGraph, JoinGraphError
from repro.catalog.schema import BYTES_PER_GB, Catalog
from repro.units import GB


@dataclass(frozen=True)
class TableStats:
    """Statistics for a (possibly intermediate) relation."""

    row_count: float
    row_width_bytes: float

    def __post_init__(self) -> None:
        if self.row_count < 0:
            raise ValueError(f"row_count must be >= 0, got {self.row_count}")
        if self.row_width_bytes <= 0:
            raise ValueError(
                f"row_width_bytes must be > 0, got {self.row_width_bytes}"
            )

    @property
    def size_bytes(self) -> float:
        """Estimated total size in bytes."""
        return self.row_count * self.row_width_bytes

    @property
    def size_gb(self) -> float:
        """Estimated total size in GB."""
        return self.size_bytes / BYTES_PER_GB


class StatisticsEstimator:
    """Estimates cardinalities and sizes of joins over a catalog.

    ``filter_factors`` scales base-table cardinalities before any join
    arithmetic -- the paper's uniform sampling filters ("a specific
    fraction of the table each time"). Estimates for a relation *set*
    are memoised: planners (especially the Selinger DP) ask for the same
    subsets repeatedly.
    """

    def __init__(
        self,
        catalog: Catalog,
        filter_factors: Optional[Dict[str, float]] = None,
    ) -> None:
        self._catalog = catalog
        self._filters: Dict[str, float] = dict(filter_factors or {})
        for table, factor in self._filters.items():
            if table not in catalog.schema:
                raise JoinGraphError(
                    f"filter on unknown table {table!r}"
                )
            if not 0.0 < factor <= 1.0:
                raise ValueError(
                    f"filter factor on {table!r} must be in (0, 1], "
                    f"got {factor}"
                )
        self._cache: Dict[FrozenSet[str], TableStats] = {}

    def with_filters(
        self, filter_factors: Dict[str, float]
    ) -> "StatisticsEstimator":
        """A derived estimator applying per-table scan selectivities."""
        if not filter_factors:
            return self
        merged = dict(self._filters)
        merged.update(filter_factors)
        return StatisticsEstimator(self._catalog, merged)

    @property
    def catalog(self) -> Catalog:
        """The catalog this estimator reads statistics from."""
        return self._catalog

    @property
    def join_graph(self) -> JoinGraph:
        """The catalog's join graph."""
        return self._catalog.join_graph

    def base_stats(self, table_name: str) -> TableStats:
        """Statistics of a single (possibly filtered) base table."""
        table = self._catalog.table(table_name)
        factor = self._filters.get(table_name, 1.0)
        return TableStats(
            row_count=float(table.row_count) * factor,
            row_width_bytes=float(table.row_width_bytes),
        )

    def stats_for(self, tables: Iterable[str]) -> TableStats:
        """Statistics of the relation produced by joining ``tables``.

        The tables must induce a connected subgraph of the join graph
        (cross joins are rejected -- the paper's queries are all connected
        join queries).
        """
        key = frozenset(tables)
        if not key:
            raise JoinGraphError("empty table set")
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        names = sorted(key)
        if len(names) == 1:
            stats = self.base_stats(names[0])
            self._cache[key] = stats
            return stats
        if not self.join_graph.is_connected(names):
            raise JoinGraphError(
                f"tables {names} are not connected in the join graph"
            )
        rows = 1.0
        width = 0.0
        for name in names:
            base = self.base_stats(name)
            rows *= base.row_count
            width += base.row_width_bytes
        for edge in self.join_graph.edges_within(names):
            rows *= edge.selectivity
        stats = TableStats(row_count=rows, row_width_bytes=width)
        self._cache[key] = stats
        return stats

    def join_stats(
        self, left_tables: Iterable[str], right_tables: Iterable[str]
    ) -> TableStats:
        """Statistics of joining two disjoint relation sets."""
        left = frozenset(left_tables)
        right = frozenset(right_tables)
        return self.stats_for(left | right)

    def join_io_gb(
        self, left_tables: Iterable[str], right_tables: Iterable[str]
    ) -> Tuple[GB, GB]:
        """(smaller, larger) input sizes in GB for a join of two sets.

        This is the ``ss`` (smaller side size) feature the paper's cost
        model is trained on, plus the larger side used by the engine
        simulator.
        """
        left_gb = self.stats_for(left_tables).size_gb
        right_gb = self.stats_for(right_tables).size_gb
        return (GB(min(left_gb, right_gb)), GB(max(left_gb, right_gb)))

    def clear_cache(self) -> None:
        """Drop all memoised intermediate statistics."""
        self._cache.clear()
