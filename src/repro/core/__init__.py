"""RAQO: the paper's contribution -- joint resource and query optimization.

- :mod:`repro.core.cost_model` -- learned per-operator cost models
  ``f(data, resources) -> cost`` (Sec VI-A), plus a simulator-backed
  oracle model.
- :mod:`repro.core.paper_models` -- the exact regression coefficient
  vectors published in the paper.
- :mod:`repro.core.resource_planner` -- brute-force and hill-climbing
  resource planning (Sec VI-B, Algorithm 1).
- :mod:`repro.core.plan_cache` -- the resource plan cache with exact,
  nearest-neighbour, and weighted-average lookup (Sec VI-B3).
- :mod:`repro.core.raqo` -- the joint planner: plugs resource planning
  into the ``getPlanCost`` seam of the Selinger and FastRandomized
  planners (Sec VI-C), plus the plain two-step baseline.
- :mod:`repro.core.decision_tree` -- a from-scratch CART (gini)
  classifier (the paper used scikit-learn's).
- :mod:`repro.core.switch_points` / :mod:`repro.core.rules` -- rule-based
  RAQO: switch-point extraction and resource-aware decision trees
  (Sec V).
- :mod:`repro.core.monetary` -- monetary switch-point analysis (Sec
  III-C).
- :mod:`repro.core.use_cases` -- the four RAQO operating modes of Sec IV.
"""

from repro.core.cost_model import (
    CostModelSuite,
    OperatorCostModel,
    SimulatorCostModel,
)
from repro.core.explain import explain
from repro.core.plan_cache import LookupMode, ResourcePlanCache
from repro.core.price_performance import price_performance_curve
from repro.core.raqo import QueryOptimizerCoster, RaqoCoster, RaqoPlanner
from repro.core.resource_planner import (
    brute_force_resource_plan,
    hill_climb_resource_plan,
)
from repro.core.robustness import RobustnessCriterion, robust_plan
from repro.core.units import (
    GB,
    Containers,
    Dollars,
    DollarsPerHour,
    GBSeconds,
    Rows,
    Seconds,
)
from repro.core.whatif import what_if

__all__ = [
    "GB",
    "Containers",
    "CostModelSuite",
    "Dollars",
    "DollarsPerHour",
    "GBSeconds",
    "LookupMode",
    "Rows",
    "Seconds",
    "OperatorCostModel",
    "QueryOptimizerCoster",
    "RaqoCoster",
    "RaqoPlanner",
    "ResourcePlanCache",
    "RobustnessCriterion",
    "SimulatorCostModel",
    "brute_force_resource_plan",
    "explain",
    "hill_climb_resource_plan",
    "price_performance_curve",
    "robust_plan",
    "what_if",
]
