"""Monetary cost analysis of join executions (paper Sec III-C).

Serverless users "only pay for the total container hours consumed": the
dollar cost of a run is its GB-seconds times the price rate. This module
evaluates the monetary cost of individual join implementations over the
resource space, the Fig 6 cost curves and the Fig 7 monetary switch
points -- which differ from the execution-time switch points, the paper's
point that "query planning, without planning for resources, could not only
lead to poorer performance but also higher monetary costs."
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cluster.containers import ResourceConfiguration
from repro.cluster.pricing import PriceModel
from repro.core.switch_points import (
    SwitchMetric,
    SwitchPoint,
    find_switch_point,
)
from repro.engine.joins import JoinAlgorithm, join_execution
from repro.engine.profiles import EngineProfile


@dataclass(frozen=True)
class MonetaryComparison:
    """Dollar costs of both implementations at one configuration."""

    config: ResourceConfiguration
    smj_dollars: float
    bhj_dollars: float

    @property
    def cheaper(self) -> JoinAlgorithm:
        """The cost-effective implementation at this point."""
        if self.bhj_dollars < self.smj_dollars:
            return JoinAlgorithm.BROADCAST_HASH
        return JoinAlgorithm.SORT_MERGE


def join_dollars(
    algorithm: JoinAlgorithm,
    small_gb: float,
    large_gb: float,
    config: ResourceConfiguration,
    profile: EngineProfile,
    price_model: Optional[PriceModel] = None,
    num_reducers: Optional[int] = None,
) -> float:
    """Dollar cost of one simulated join run (inf when infeasible)."""
    price_model = price_model or PriceModel()
    execution = join_execution(
        algorithm, small_gb, large_gb, config, profile, num_reducers
    )
    if not execution.feasible:
        return math.inf
    return price_model.cost_of_gb_seconds(
        config.gb_seconds(execution.time_s)
    )


def compare_monetary(
    small_gb: float,
    large_gb: float,
    config: ResourceConfiguration,
    profile: EngineProfile,
    price_model: Optional[PriceModel] = None,
    num_reducers: Optional[int] = None,
) -> MonetaryComparison:
    """Fig 6: both implementations' dollar costs at one point."""
    return MonetaryComparison(
        config=config,
        smj_dollars=join_dollars(
            JoinAlgorithm.SORT_MERGE,
            small_gb,
            large_gb,
            config,
            profile,
            price_model,
            num_reducers,
        ),
        bhj_dollars=join_dollars(
            JoinAlgorithm.BROADCAST_HASH,
            small_gb,
            large_gb,
            config,
            profile,
            price_model,
            num_reducers,
        ),
    )


def monetary_cost_curve(
    small_gb: float,
    large_gb: float,
    configs: Sequence[ResourceConfiguration],
    profile: EngineProfile,
    price_model: Optional[PriceModel] = None,
) -> List[MonetaryComparison]:
    """Fig 6 series: sweep a list of resource configurations."""
    return [
        compare_monetary(
            small_gb, large_gb, config, profile, price_model
        )
        for config in configs
    ]


def monetary_switch_point(
    profile: EngineProfile,
    large_gb: float,
    config: ResourceConfiguration,
    num_reducers: Optional[int] = None,
    resolution_gb: float = 0.05,
) -> SwitchPoint:
    """Fig 7: the data switch point under the monetary metric.

    GB-seconds is proportional to dollars under the linear serverless
    price model, so the switch location is price-rate independent.
    """
    return find_switch_point(
        profile,
        large_gb,
        config,
        num_reducers=num_reducers,
        metric=SwitchMetric.MONEY,
        resolution_gb=resolution_gb,
    )
