"""EXPLAIN for joint query/resource plans (paper Sec VIII).

"How will the 'explain' command look in such systems?" -- a RAQO explain
must justify two decisions per operator: the implementation *and* the
resources. :func:`explain` renders a joint plan with, per join operator:

- the implementation chosen and the predicted time of the alternative
  (so the user sees the switch-point margin),
- the planned resource configuration and its predicted time/dollars,
- how the configuration compares to running at the cluster minimum and
  maximum (the resource rationale).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.catalog.queries import Query
from repro.cluster.containers import ResourceConfiguration
from repro.core.cost_model import JoinCostEstimator
from repro.core.numeric import is_effectively_zero
from repro.core.raqo import RaqoPlanner
from repro.engine.joins import JoinAlgorithm
from repro.planner.cost_interface import PlanningResult


@dataclass(frozen=True)
class OperatorExplanation:
    """The justification for one join operator's joint decision."""

    tables: Tuple[str, ...]
    algorithm: JoinAlgorithm
    resources: Optional[ResourceConfiguration]
    predicted_time_s: float
    predicted_dollars: float
    #: Predicted time of the *other* implementation at the same
    #: resources (inf when infeasible there).
    alternative_time_s: float
    #: Predicted times at the cluster's minimum and maximum envelope.
    at_minimum_s: float
    at_maximum_s: float

    @property
    def alternative_margin(self) -> float:
        """How much slower the rejected implementation would be."""
        if not math.isfinite(self.alternative_time_s):
            return math.inf
        if is_effectively_zero(self.predicted_time_s):
            return math.inf
        return self.alternative_time_s / self.predicted_time_s


def explain_plan(
    result: PlanningResult,
    model: JoinCostEstimator,
    planner: RaqoPlanner,
) -> List[OperatorExplanation]:
    """Build per-operator explanations for a planning result."""
    explanations: List[OperatorExplanation] = []
    cluster = planner.cluster
    price = planner.price_model
    for join in result.plan.joins_postorder():
        small_gb, large_gb = planner.estimator.join_io_gb(
            join.left.tables, join.right.tables
        )
        resources = join.resources or cluster.clamp(
            ResourceConfiguration(num_containers=10, container_gb=4.0)
        )
        time_s = model.predict_time(
            join.algorithm, small_gb, large_gb, resources
        )
        other = (
            JoinAlgorithm.BROADCAST_HASH
            if join.algorithm is JoinAlgorithm.SORT_MERGE
            else JoinAlgorithm.SORT_MERGE
        )
        explanations.append(
            OperatorExplanation(
                tables=tuple(sorted(join.tables)),
                algorithm=join.algorithm,
                resources=join.resources,
                predicted_time_s=time_s,
                predicted_dollars=price.cost_of_gb_seconds(
                    resources.gb_seconds(time_s)
                )
                if math.isfinite(time_s)
                else math.inf,
                alternative_time_s=model.predict_time(
                    other, small_gb, large_gb, resources
                ),
                at_minimum_s=model.predict_time(
                    join.algorithm,
                    small_gb,
                    large_gb,
                    cluster.minimum_configuration,
                ),
                at_maximum_s=model.predict_time(
                    join.algorithm,
                    small_gb,
                    large_gb,
                    cluster.maximum_configuration,
                ),
            )
        )
    return explanations


def explain(planner: RaqoPlanner, query: Query) -> str:
    """Optimize ``query`` and render the full joint-plan explanation."""
    result = planner.optimize(query)
    explanations = explain_plan(result, planner.cost_model, planner)
    lines = [
        f"EXPLAIN {query.name}: joint query and resource plan",
        result.plan.explain(),
        "",
        f"predicted time {result.cost.time_s:.1f} s, "
        f"monetary ${result.cost.money:.3f}, "
        f"planned in {result.wall_time_s * 1000:.1f} ms exploring "
        f"{result.resource_iterations} resource configurations",
        "",
    ]
    for index, op in enumerate(explanations):
        margin = (
            "infeasible"
            if not math.isfinite(op.alternative_margin)
            else f"{op.alternative_margin:.2f}x slower"
        )
        lines.append(
            f"operator {index}: {op.algorithm.name} over "
            f"{', '.join(op.tables)}"
        )
        lines.append(
            f"  resources {op.resources}: {op.predicted_time_s:.1f} s, "
            f"${op.predicted_dollars:.4f}"
        )
        lines.append(f"  alternative implementation: {margin}")
        lines.append(
            f"  at cluster min/max: {op.at_minimum_s:.1f} s / "
            f"{op.at_maximum_s:.1f} s"
        )
    return "\n".join(lines)
