"""The exact regression coefficients published in the paper (Sec VI-A).

"Our regression analysis over the SMJ and BHJ profile runs on Hive yielded
the following coefficients" -- reproduced verbatim below over the feature
vector ``[ss, ss^2, cs, cs^2, nc, nc^2, cs*nc]``. The paper prints no
intercept, so the models are interpreted as intercept-free.

The coefficient *signs* carry the paper's headline observation: "SMJ has
positive coefficients for container size and negative for the number of
containers, while it is opposite for BHJ ... SMJ improves more with larger
parallelism while BHJ improves more with larger container sizes."
:func:`coefficient_signs_consistent` checks exactly that property and is
exercised by the test suite, both on these constants and on freshly
trained models.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.cost_model import (
    OperatorCostModel,
    PAPER_FEATURES,
)
from repro.engine.joins import JoinAlgorithm

#: Published SMJ coefficients over [ss, ss^2, cs, cs^2, nc, nc^2, cs*nc].
PAPER_SMJ_COEFFICIENTS: Tuple[float, ...] = (
    1.62643613e01,
    9.68774888e-01,
    1.33866542e-02,
    1.60639851e-01,
    -7.82618920e-03,
    -3.91309460e-01,
    1.10387975e-01,
)

#: Published BHJ coefficients over the same feature vector.
PAPER_BHJ_COEFFICIENTS: Tuple[float, ...] = (
    1.00739509e04,
    -6.72184592e02,
    -1.37392901e01,
    -1.64871481e02,
    2.44721676e-02,
    1.22360838e00,
    -1.37319484e02,
)

#: The paper's published SMJ model as a ready-to-use cost model.
PAPER_SMJ_MODEL = OperatorCostModel(
    algorithm=JoinAlgorithm.SORT_MERGE,
    feature_map=PAPER_FEATURES,
    coefficients=PAPER_SMJ_COEFFICIENTS,
    intercept=0.0,
)

#: The paper's published BHJ model as a ready-to-use cost model.
PAPER_BHJ_MODEL = OperatorCostModel(
    algorithm=JoinAlgorithm.BROADCAST_HASH,
    feature_map=PAPER_FEATURES,
    coefficients=PAPER_BHJ_COEFFICIENTS,
    intercept=0.0,
)


def coefficient_signs_consistent(
    smj_coefficients: Tuple[float, ...],
    bhj_coefficients: Tuple[float, ...],
) -> bool:
    """Check the paper's Sec VI-A sign observation on two paper-feature
    coefficient vectors.

    SMJ must have a non-positive quadratic number-of-containers term
    (cost falls with parallelism) and a non-negative quadratic container
    -size term; BHJ must show the opposite signs on the same terms. The
    quadratic terms dominate the linear ones over the profiled ranges,
    which is why the paper reads the signs off them.
    """
    cs2_index = PAPER_FEATURES.feature_names.index("cs^2")
    nc2_index = PAPER_FEATURES.feature_names.index("nc^2")
    smj_ok = (
        smj_coefficients[cs2_index] >= 0
        and smj_coefficients[nc2_index] <= 0
    )
    bhj_ok = (
        bhj_coefficients[cs2_index] <= 0
        and bhj_coefficients[nc2_index] >= 0
    )
    return smj_ok and bhj_ok
