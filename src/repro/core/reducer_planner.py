"""Planning the third resource dimension: tasks per DAG vertex.

The paper's resource optimization problem has three knobs (Sec II-B):
container size, maximum concurrent containers, and "the total number of
containers per DAG vertex, i.e., the total tasks per vertex" -- the
reducer count for a shuffle join. The main cost-based pipeline plans the
first two (the hill-climb dimensions of Algorithm 1); this module plans
the third, given a chosen configuration: sweep candidate reducer counts
through the engine simulator and keep the cheapest.

Hive's own heuristic ("automatically determine the number of reducers")
is the baseline; the planner improves on it exactly where Fig 9's
<#containers, #reducers> curves diverge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.cluster.containers import ResourceConfiguration
from repro.engine.joins import (
    JoinAlgorithm,
    default_num_reducers,
    smj_execution,
)
from repro.engine.profiles import EngineProfile


@dataclass(frozen=True)
class ReducerPlan:
    """The chosen reducer count and its predicted benefit."""

    num_reducers: int
    time_s: float
    auto_reducers: int
    auto_time_s: float
    candidates_evaluated: int

    @property
    def improvement_over_auto(self) -> float:
        """Speedup over the engine's automatic reducer heuristic."""
        if self.time_s <= 0:
            return math.inf
        return self.auto_time_s / self.time_s


def candidate_reducer_counts(
    data_gb: float,
    config: ResourceConfiguration,
    profile: EngineProfile,
) -> Tuple[int, ...]:
    """A small, well-spread candidate set around the useful range.

    Includes the automatic choice, multiples of the container count
    (whole waves), and the coarse landmarks the paper's Fig 9 sweeps.
    """
    auto = default_num_reducers(data_gb, profile)
    nc = config.num_containers
    candidates = {
        1,
        nc,
        2 * nc,
        4 * nc,
        8 * nc,
        auto,
        max(1, auto // 2),
        min(profile.max_reducers, auto * 2),
        200,
        1000,
    }
    bounded = {
        min(max(1, candidate), profile.max_reducers)
        for candidate in candidates
    }
    return tuple(sorted(bounded))


def plan_reducers(
    small_gb: float,
    large_gb: float,
    config: ResourceConfiguration,
    profile: EngineProfile,
    candidates: Optional[Sequence[int]] = None,
) -> ReducerPlan:
    """Pick the reducer count minimising the simulated SMJ time.

    Only SMJ has a reduce phase; BHJ callers should not plan reducers
    (:func:`plan_reducers_for` dispatches accordingly).
    """
    data_gb = small_gb + large_gb
    if candidates is None:
        candidates = candidate_reducer_counts(data_gb, config, profile)
    if not candidates:
        raise ValueError("need at least one reducer candidate")
    auto = default_num_reducers(data_gb, profile)
    auto_time = smj_execution(
        small_gb, large_gb, config, profile, num_reducers=auto
    ).time_s

    best_count = auto
    best_time = auto_time
    evaluated = 0
    for count in candidates:
        evaluated += 1
        time_s = smj_execution(
            small_gb, large_gb, config, profile, num_reducers=count
        ).time_s
        if time_s < best_time:
            best_time = time_s
            best_count = count
    return ReducerPlan(
        num_reducers=best_count,
        time_s=best_time,
        auto_reducers=auto,
        auto_time_s=auto_time,
        candidates_evaluated=evaluated,
    )


def plan_reducers_for(
    algorithm: JoinAlgorithm,
    small_gb: float,
    large_gb: float,
    config: ResourceConfiguration,
    profile: EngineProfile,
) -> Optional[ReducerPlan]:
    """Reducer plan for an operator, or None when it has no reducers."""
    if algorithm is not JoinAlgorithm.SORT_MERGE:
        return None
    return plan_reducers(small_gb, large_gb, config, profile)
