"""Price-performance analysis (paper Sec VIII, "RAQO and pricing").

"It would be interesting to see if our findings from RAQO can be used to
suggest new pricing models for cloud environments." This module derives
the query-level price-performance frontier RAQO makes computable: for a
query, the set of (dollars, seconds) operating points reachable by
varying the joint plan, and the marginal price of speed between adjacent
points -- the quantity a price-aware user (or a provider designing
tiers) actually needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.catalog.queries import Query
from repro.core.pareto import PlanObjective
from repro.core.raqo import PlannerKind, RaqoPlanner
from repro.planner.plan import PlanNode


@dataclass(frozen=True)
class OperatingPoint:
    """One reachable (dollars, seconds) point with its plan."""

    time_s: float
    dollars: float
    plan: PlanNode


@dataclass(frozen=True)
class PricePerformanceCurve:
    """The Pareto frontier of operating points, fastest first."""

    query_name: str
    points: Tuple[OperatingPoint, ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("curve needs at least one point")

    @property
    def fastest(self) -> OperatingPoint:
        """The minimum-time operating point."""
        return self.points[0]

    @property
    def cheapest(self) -> OperatingPoint:
        """The minimum-dollar operating point."""
        return min(self.points, key=lambda p: p.dollars)

    def cheapest_within(self, max_seconds: float) -> Optional[OperatingPoint]:
        """The cheapest point meeting a latency SLA, or None."""
        eligible = [p for p in self.points if p.time_s <= max_seconds]
        if not eligible:
            return None
        return min(eligible, key=lambda p: p.dollars)

    def fastest_within(self, max_dollars: float) -> Optional[OperatingPoint]:
        """The fastest point meeting a price cap, or None."""
        eligible = [p for p in self.points if p.dollars <= max_dollars]
        if not eligible:
            return None
        return min(eligible, key=lambda p: p.time_s)

    def marginal_prices(self) -> List[Tuple[float, float]]:
        """(seconds saved, extra dollars) between adjacent points.

        Walking from the cheapest point toward the fastest, each entry
        is the cost of the next speed-up step -- the "price of speed".
        """
        ordered = sorted(self.points, key=lambda p: p.dollars)
        steps = []
        for slow, fast in zip(ordered, ordered[1:]):
            seconds_saved = slow.time_s - fast.time_s
            extra_dollars = fast.dollars - slow.dollars
            steps.append((seconds_saved, extra_dollars))
        return steps


def price_performance_curve(
    planner: RaqoPlanner,
    query: Query,
    money_weights: Sequence[float] = (0.0, 0.5, 2.0, 8.0, 32.0, 128.0),
    iterations: int = 5,
) -> PricePerformanceCurve:
    """Trace the query's reachable (dollars, seconds) frontier.

    Runs the multi-objective FastRandomized planner once per money
    weight (each weight biases the resource planning toward a different
    part of the trade-off), merges all frontiers, and keeps the Pareto
    subset.
    """
    candidates: List[OperatingPoint] = []
    for weight_index, weight in enumerate(money_weights):
        sub_planner = RaqoPlanner(
            planner.catalog,
            cluster=planner.cluster,
            cost_model=planner.cost_model,
            planner_kind=PlannerKind.FAST_RANDOMIZED,
            price_model=planner.price_model,
            objective=PlanObjective.weighted(weight),
            randomized_iterations=iterations,
            seed=weight_index,
        )
        result = sub_planner.optimize(query)
        frontier = getattr(
            result, "frontier", ((result.plan, result.cost),)
        )
        for plan, cost in frontier:
            if cost.is_finite:
                candidates.append(
                    OperatingPoint(
                        time_s=cost.time_s,
                        dollars=cost.money,
                        plan=plan,
                    )
                )
    pareto = _pareto_subset(candidates)
    return PricePerformanceCurve(
        query_name=query.name, points=tuple(pareto)
    )


def _pareto_subset(
    candidates: Sequence[OperatingPoint],
) -> List[OperatingPoint]:
    """Non-dominated points, sorted fastest first.

    Scanning in (time, dollars) order, every earlier kept point is at
    least as fast, so a candidate survives exactly when it is strictly
    cheaper than everything kept so far.
    """
    pareto: List[OperatingPoint] = []
    cheapest_so_far = math.inf
    for candidate in sorted(
        candidates, key=lambda p: (p.time_s, p.dollars)
    ):
        if candidate.dollars < cheapest_so_far:
            pareto.append(candidate)
            cheapest_so_far = candidate.dollars
    return pareto
