"""The four RAQO operating modes of the paper's Sec IV.

"The RAQO architecture enables several interesting use-cases":

1. ``r => p``    -- constrained resources (tenant quota): the best plan
   for a given resource budget (:func:`best_plan_for_budget`).
2. ``p => (r, c)`` -- a fixed plan that already meets the SLA: adjust the
   resources to lower the monetary cost
   (:func:`plan_resources_for_plan`).
3. ``(p, r)``    -- abundant resources: jointly pick the best plan and
   resources (:func:`best_joint_plan`).
4. ``c => (p, r)`` -- a monetary budget: the best-performing joint plan
   under a price ceiling (:func:`plan_for_price`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.catalog.queries import Query
from repro.cluster.cluster import ClusterConditions
from repro.cluster.containers import ResourceConfiguration
from repro.core.pareto import PlanObjective
from repro.core.raqo import (
    PlannerKind,
    QueryOptimizerCoster,
    RaqoCoster,
    RaqoPlanner,
)
from repro.planner.cost_interface import (
    Cost,
    PlanningContext,
    PlanningResult,
    get_plan_cost,
)
from repro.planner.plan import PlanNode
from repro.planner.selinger import SelingerPlanner


class UseCaseError(Exception):
    """Raised when a use-case constraint cannot be satisfied."""


def best_plan_for_budget(
    planner: RaqoPlanner,
    query: Query,
    budget: ResourceConfiguration,
) -> PlanningResult:
    """Use-case 1 (``r => p``): the best plan for a fixed resource budget.

    All operators run within ``budget``; the optimizer only searches the
    plan space.
    """
    coster = QueryOptimizerCoster(
        model=planner.cost_model,
        default_resources=budget,
        price_model=planner.price_model,
    )
    selinger = SelingerPlanner(coster)
    context = planner.make_context(
        ClusterConditions(
            max_containers=budget.num_containers,
            max_container_gb=budget.container_gb,
        )
    )
    return selinger.plan(query, context)


def plan_resources_for_plan(
    planner: RaqoPlanner,
    plan: PlanNode,
    context: Optional[PlanningContext] = None,
) -> Tuple[PlanNode, Cost]:
    """Use-case 2 (``p => (r, c)``): keep the plan, replan its resources.

    Returns the plan annotated with per-operator resources and its cost
    (including the monetary component the user asked to minimise).
    """
    coster = RaqoCoster(
        model=planner.cost_model,
        cache=planner.cache,
        price_model=planner.price_model,
        money_weight=1.0,
    )
    context = context or planner.make_context()
    annotated, cost = get_plan_cost(plan, coster, context)
    if not cost.is_finite:
        raise UseCaseError(
            "the given plan is infeasible under the current cluster "
            "conditions"
        )
    return annotated, cost


def best_joint_plan(
    planner: RaqoPlanner, query: Query
) -> PlanningResult:
    """Use-case 3 (``(p, r)``): the full joint optimization."""
    return planner.optimize(query)


@dataclass(frozen=True)
class PricedPlan:
    """The outcome of a price-constrained optimization."""

    plan: PlanNode
    cost: Cost
    within_budget: bool


def plan_for_price(
    catalog_planner: RaqoPlanner,
    query: Query,
    max_dollars: float,
) -> PricedPlan:
    """Use-case 4 (``c => (p, r)``): best performance under a price cap.

    Runs the multi-objective FastRandomized planner, then picks the
    fastest Pareto plan whose monetary cost respects the cap. When no
    frontier plan fits the cap, the cheapest plan is returned with
    ``within_budget=False`` so the caller can renegotiate.
    """
    if max_dollars <= 0:
        raise UseCaseError(
            f"max_dollars must be > 0, got {max_dollars}"
        )
    planner = RaqoPlanner(
        catalog_planner.catalog,
        cluster=catalog_planner.cluster,
        cost_model=catalog_planner.cost_model,
        planner_kind=PlannerKind.FAST_RANDOMIZED,
        price_model=catalog_planner.price_model,
        objective=PlanObjective.weighted(1.0 / max_dollars),
    )
    result = planner.optimize(query)
    frontier = getattr(result, "frontier", ())
    candidates = [
        (plan, cost)
        for plan, cost in frontier
        if cost.money <= max_dollars
    ]
    if candidates:
        plan, cost = min(candidates, key=lambda entry: entry[1].time_s)
        return PricedPlan(plan=plan, cost=cost, within_budget=True)
    pool = list(frontier) or [(result.plan, result.cost)]
    plan, cost = min(pool, key=lambda entry: entry[1].money)
    return PricedPlan(plan=plan, cost=cost, within_budget=False)
