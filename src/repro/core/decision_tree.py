"""A from-scratch CART decision-tree classifier (gini impurity).

The paper builds its rule-based RAQO trees with "the decision tree
classifier from scikit-learn in python over the switch point results"
(Sec V-B). scikit-learn is not available in this environment, so this is a
minimal, deterministic CART implementation with the same semantics:
binary splits on ``feature <= threshold``, chosen to minimise the
gini-weighted impurity of the children, with thresholds at midpoints of
consecutive distinct feature values.

:meth:`DecisionTreeClassifier.export_text` renders trees in the style of
the paper's Figs 10 and 11 (gini, samples, value, class per node).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np


class DecisionTreeError(Exception):
    """Raised for invalid training data or an unfitted tree."""


@dataclass
class TreeNode:
    """One node of a fitted tree (leaf when ``feature`` is None)."""

    gini: float
    samples: int
    value: Tuple[int, ...]
    prediction: int
    feature: Optional[int] = None
    threshold: Optional[float] = None
    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None

    @property
    def is_leaf(self) -> bool:
        """True when the node does not split further."""
        return self.feature is None

    def depth(self) -> int:
        """Longest root-to-leaf path length below this node."""
        if self.is_leaf:
            return 0
        assert self.left is not None and self.right is not None
        return 1 + max(self.left.depth(), self.right.depth())

    def num_leaves(self) -> int:
        """Number of leaves below (and including) this node."""
        if self.is_leaf:
            return 1
        assert self.left is not None and self.right is not None
        return self.left.num_leaves() + self.right.num_leaves()


def gini_impurity(counts: np.ndarray) -> float:
    """Gini impurity of a class-count vector."""
    total = counts.sum()
    if total == 0:
        return 0.0
    proportions = counts / total
    return float(1.0 - np.sum(proportions**2))


class DecisionTreeClassifier:
    """CART with gini splits, compatible with the paper's usage."""

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
    ) -> None:
        if max_depth is not None and max_depth < 0:
            raise DecisionTreeError(
                f"max_depth must be >= 0, got {max_depth}"
            )
        if min_samples_split < 2:
            raise DecisionTreeError(
                f"min_samples_split must be >= 2, got {min_samples_split}"
            )
        if min_samples_leaf < 1:
            raise DecisionTreeError(
                f"min_samples_leaf must be >= 1, got {min_samples_leaf}"
            )
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.root: Optional[TreeNode] = None
        self.classes_: Tuple = ()
        self.n_features_: int = 0

    def fit(
        self, features: Sequence[Sequence[float]], labels: Sequence
    ) -> "DecisionTreeClassifier":
        """Fit the tree; labels may be any hashable values."""
        X = np.asarray(features, dtype=float)
        if X.ndim != 2 or X.shape[0] == 0:
            raise DecisionTreeError(
                "features must be a non-empty 2-D array"
            )
        if len(labels) != X.shape[0]:
            raise DecisionTreeError(
                f"got {X.shape[0]} feature rows but {len(labels)} labels"
            )
        self.classes_ = tuple(sorted(set(labels), key=str))
        class_index = {label: i for i, label in enumerate(self.classes_)}
        y = np.asarray([class_index[label] for label in labels])
        self.n_features_ = X.shape[1]
        self.root = self._build(X, y, depth=0)
        return self

    def _class_counts(self, y: np.ndarray) -> np.ndarray:
        return np.bincount(y, minlength=len(self.classes_))

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> TreeNode:
        counts = self._class_counts(y)
        node = TreeNode(
            gini=gini_impurity(counts),
            samples=len(y),
            value=tuple(int(c) for c in counts),
            prediction=int(np.argmax(counts)),
        )
        if (
            node.gini == 0.0
            or len(y) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
        ):
            return node
        split = self._best_split(X, y)
        if split is None:
            return node
        feature, threshold = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def _best_split(
        self, X: np.ndarray, y: np.ndarray
    ) -> Optional[Tuple[int, float]]:
        """The (feature, threshold) minimising weighted child gini.

        Zero-gain splits are admitted (as in sklearn's CART): they are
        what makes patterns like XOR learnable, and recursion still
        terminates because every split strictly shrinks both children.
        """
        best: Optional[Tuple[int, float]] = None
        best_score = gini_impurity(self._class_counts(y)) + 1e-12
        total = len(y)
        for feature in range(X.shape[1]):
            order = np.argsort(X[:, feature], kind="stable")
            values = X[order, feature]
            sorted_y = y[order]
            left_counts = np.zeros(len(self.classes_))
            right_counts = self._class_counts(y).astype(float)
            for i in range(total - 1):
                label = sorted_y[i]
                left_counts[label] += 1
                right_counts[label] -= 1
                if values[i] == values[i + 1]:
                    continue
                left_n, right_n = i + 1, total - i - 1
                if (
                    left_n < self.min_samples_leaf
                    or right_n < self.min_samples_leaf
                ):
                    continue
                score = (
                    left_n * gini_impurity(left_counts)
                    + right_n * gini_impurity(right_counts)
                ) / total
                if score < best_score:
                    best_score = score
                    threshold = (values[i] + values[i + 1]) / 2.0
                    best = (feature, threshold)
        return best

    def _require_fitted(self) -> TreeNode:
        if self.root is None:
            raise DecisionTreeError("tree is not fitted")
        return self.root

    def predict_one(self, features: Sequence[float]) -> Any:
        """Predict the class label of one sample (labels are opaque)."""
        node = self._require_fitted()
        row = np.asarray(features, dtype=float)
        if row.shape != (self.n_features_,):
            raise DecisionTreeError(
                f"expected {self.n_features_} features, got {row.shape}"
            )
        while not node.is_leaf:
            assert node.feature is not None
            assert node.left is not None and node.right is not None
            node = (
                node.left
                if row[node.feature] <= node.threshold
                else node.right
            )
        return self.classes_[node.prediction]

    def predict(self, features: Sequence[Sequence[float]]) -> List:
        """Predict class labels for many samples."""
        return [self.predict_one(row) for row in features]

    def accuracy(
        self, features: Sequence[Sequence[float]], labels: Sequence
    ) -> float:
        """Fraction of samples classified correctly."""
        predictions = self.predict(features)
        matches = sum(
            1 for p, t in zip(predictions, labels) if p == t
        )
        return matches / len(labels)

    @property
    def depth(self) -> int:
        """Depth of the fitted tree."""
        return self._require_fitted().depth()

    @property
    def num_leaves(self) -> int:
        """Leaf count of the fitted tree."""
        return self._require_fitted().num_leaves()

    def max_path_length(self) -> int:
        """Longest decision path (the paper reports 6 for Hive, 7 for
        Spark RAQO trees)."""
        return self.depth

    def export_text(
        self,
        feature_names: Optional[Sequence[str]] = None,
        class_names: Optional[Sequence[str]] = None,
    ) -> str:
        """Render the tree in the style of the paper's Figs 10/11."""
        root = self._require_fitted()
        if feature_names is None:
            feature_names = [
                f"feature[{i}]" for i in range(self.n_features_)
            ]
        if class_names is None:
            class_names = [str(c) for c in self.classes_]
        lines: List[str] = []

        def render(node: TreeNode, indent: int, prefix: str) -> None:
            pad = "  " * indent
            header = (
                f"{pad}{prefix}gini={node.gini:.4f} "
                f"samples={node.samples} value={list(node.value)} "
                f"class={class_names[node.prediction]}"
            )
            if node.is_leaf:
                lines.append(header)
                return
            assert node.feature is not None
            lines.append(
                f"{pad}{prefix}{feature_names[node.feature]} <= "
                f"{node.threshold:.4g} | gini={node.gini:.4f} "
                f"samples={node.samples} value={list(node.value)} "
                f"class={class_names[node.prediction]}"
            )
            assert node.left is not None and node.right is not None
            render(node.left, indent + 1, "True: ")
            render(node.right, indent + 1, "False: ")

        render(root, 0, "")
        return "\n".join(lines)
