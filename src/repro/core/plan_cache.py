"""The resource plan cache (paper Sec VI-B3).

"For each cost model (e.g., SMJ, BHJ) and sub-plan (e.g., join operator,
scan operator), we maintain an in-memory index of data characteristic
keys, each of which point to the best resource configuration for those
data characteristics ... Our current prototype keeps a sorted array of
keys, with automatic resizing whenever the array gets full, and we perform
a binary search for lookup."

Data characteristics are keyed by the operator's smaller input size (the
same quantity the paper's Fig 14 thresholds range over). Three lookup
modes are provided, as in the paper:

- ``EXACT`` -- hit only on an exact key match;
- ``NEAREST`` -- the nearest neighbour within a data-delta threshold;
- ``WEIGHTED_AVERAGE`` -- the distance-weighted average of all neighbours
  within the threshold, snapped back onto the cluster's discrete grid.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.cluster import ClusterConditions
from repro.cluster.containers import ResourceConfiguration


class LookupMode(enum.Enum):
    """Cache lookup behaviours (Sec VI-B3)."""

    EXACT = "exact"
    NEAREST = "nearest_neighbor"
    WEIGHTED_AVERAGE = "weighted_average"

    def __str__(self) -> str:
        return self.value


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache."""

    hits: int = 0
    misses: int = 0
    inserts: int = 0
    #: Distinct keys currently held across all indexes (re-inserting an
    #: existing key updates it in place and does not count).
    entries: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0 when never used)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


class _SortedIndex:
    """A sorted array of (data_gb, config) with binary-search lookup.

    The paper describes "a sorted array of keys, with automatic resizing
    whenever the array gets full". A plain ``list.insert`` at the bisect
    position makes every miss O(n) in array shifts, which dominates once
    a warm across-query cache holds thousands of keys. New keys therefore
    land in a small unsorted pending buffer (a dict, so lookups there are
    O(1)) that is merged into the sorted main array whenever it reaches
    ``MERGE_THRESHOLD``: inserts are amortized O(1) plus an occasional
    O(n + t log t) merge, instead of O(n) every time. Main-array keys and
    pending keys are kept disjoint -- re-inserting a key that already
    made it into the main array updates it in place.
    """

    #: Pending-buffer size that triggers a merge into the sorted array.
    MERGE_THRESHOLD = 64

    def __init__(self) -> None:
        self._keys: List[float] = []
        self._configs: List[ResourceConfiguration] = []
        self._pending: Dict[float, ResourceConfiguration] = {}

    def insert(self, key: float, config: ResourceConfiguration) -> bool:
        """Insert or update one entry; True when the key is new."""
        position = bisect.bisect_left(self._keys, key)
        if (
            position < len(self._keys)
            and self._keys[position] == key
        ):
            self._configs[position] = config
            return False
        is_new = key not in self._pending
        self._pending[key] = config
        if len(self._pending) >= self.MERGE_THRESHOLD:
            self._merge_pending()
        return is_new

    def _merge_pending(self) -> None:
        """Fold the pending buffer into the sorted main array (one pass)."""
        if not self._pending:
            return
        incoming = sorted(self._pending.items())
        merged_keys: List[float] = []
        merged_configs: List[ResourceConfiguration] = []
        i = j = 0
        while i < len(self._keys) and j < len(incoming):
            if self._keys[i] <= incoming[j][0]:
                merged_keys.append(self._keys[i])
                merged_configs.append(self._configs[i])
                i += 1
            else:
                merged_keys.append(incoming[j][0])
                merged_configs.append(incoming[j][1])
                j += 1
        merged_keys.extend(self._keys[i:])
        merged_configs.extend(self._configs[i:])
        for key, config in incoming[j:]:
            merged_keys.append(key)
            merged_configs.append(config)
        self._keys = merged_keys
        self._configs = merged_configs
        self._pending.clear()

    def exact(self, key: float) -> Optional[ResourceConfiguration]:
        pending = self._pending.get(key)
        if pending is not None:
            return pending
        position = bisect.bisect_left(self._keys, key)
        if position < len(self._keys) and self._keys[position] == key:
            return self._configs[position]
        return None

    def neighbors_within(
        self, key: float, threshold: float
    ) -> List[Tuple[float, ResourceConfiguration]]:
        """All entries with |entry_key - key| <= threshold, nearest first."""
        low = bisect.bisect_left(self._keys, key - threshold)
        high = bisect.bisect_right(self._keys, key + threshold)
        entries = [
            (self._keys[i], self._configs[i]) for i in range(low, high)
        ]
        entries.extend(
            (pending_key, config)
            for pending_key, config in self._pending.items()
            if abs(pending_key - key) <= threshold
        )
        # Key-sort first so equidistant neighbours tie-break by key
        # regardless of whether they sat in the buffer or the array.
        entries.sort(key=lambda entry: entry[0])
        entries.sort(key=lambda entry: abs(entry[0] - key))
        return entries

    def __len__(self) -> int:
        return len(self._keys) + len(self._pending)


class ResourcePlanCache:
    """Per-(cost model, operator) cached resource configurations."""

    def __init__(
        self,
        mode: LookupMode = LookupMode.NEAREST,
        threshold_gb: float = 0.0,
    ) -> None:
        if threshold_gb < 0:
            raise ValueError(
                f"threshold_gb must be >= 0, got {threshold_gb}"
            )
        self.mode = mode
        self.threshold_gb = threshold_gb
        self._indexes: Dict[str, _SortedIndex] = {}
        self.stats = CacheStats()

    def _index(self, model_key: str) -> _SortedIndex:
        index = self._indexes.get(model_key)
        if index is None:
            index = _SortedIndex()
            self._indexes[model_key] = index
        return index

    def lookup(
        self,
        model_key: str,
        data_gb: float,
        cluster: Optional[ClusterConditions] = None,
    ) -> Optional[ResourceConfiguration]:
        """Return a cached configuration for these data characteristics.

        All modes try an exact match first (the paper: "both variants
        first look for exact match before trying the interpolation").
        ``cluster`` is used by the weighted-average mode to snap the
        interpolated configuration back onto the discrete grid, and by
        all modes to reject cached entries that no longer fit the current
        cluster conditions.
        """
        index = self._index(model_key)
        result = index.exact(data_gb)
        if result is None and self.mode is not LookupMode.EXACT:
            neighbors = index.neighbors_within(
                data_gb, self.threshold_gb
            )
            if neighbors:
                if self.mode is LookupMode.NEAREST:
                    result = neighbors[0][1]
                else:
                    result = _weighted_average(
                        data_gb, neighbors, cluster
                    )
        if result is not None and cluster is not None:
            if not cluster.contains(result):
                result = None
        if result is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return result

    def insert(
        self,
        model_key: str,
        data_gb: float,
        config: ResourceConfiguration,
    ) -> None:
        """Record the best configuration found for these characteristics."""
        if self._index(model_key).insert(data_gb, config):
            self.stats.entries += 1
        self.stats.inserts += 1

    def clear(self) -> None:
        """Drop all cached entries (the paper clears between queries
        unless testing across-query caching)."""
        self._indexes.clear()
        self.stats.entries = 0

    def size(self, model_key: Optional[str] = None) -> int:
        """Number of cached entries (for one model or in total)."""
        if model_key is not None:
            return len(self._index(model_key))
        return sum(len(index) for index in self._indexes.values())


def _weighted_average(
    data_gb: float,
    neighbors: List[Tuple[float, ResourceConfiguration]],
    cluster: Optional[ClusterConditions],
) -> ResourceConfiguration:
    """Distance-weighted average of neighbouring configurations.

    Weights are inverse distances (an exact-distance neighbour would have
    been returned by the exact path). The averaged point is rounded to
    the nearest discrete step and clamped into the cluster envelope.
    """
    epsilon = 1e-9
    total_weight = 0.0
    containers = 0.0
    size_gb = 0.0
    for key, config in neighbors:
        weight = 1.0 / (abs(key - data_gb) + epsilon)
        total_weight += weight
        containers += weight * config.num_containers
        size_gb += weight * config.container_gb
    averaged = ResourceConfiguration(
        num_containers=max(1, int(round(containers / total_weight))),
        container_gb=max(size_gb / total_weight, 1e-9),
    )
    if cluster is None:
        return averaged
    # Snap onto the discrete grid, selecting each axis by name (rule
    # RAQO007: positional indexing breaks if the axis list changes).
    count_dim = cluster.dimension("num_containers")
    size_dim = cluster.dimension("container_gb")
    count_steps = round(
        (averaged.num_containers - count_dim.minimum) / count_dim.step
    )
    size_steps = round(
        (averaged.container_gb - size_dim.minimum) / size_dim.step
    )
    snapped = ResourceConfiguration(
        num_containers=max(
            1, int(count_dim.minimum + count_steps * count_dim.step)
        ),
        container_gb=max(
            size_dim.minimum + size_steps * size_dim.step, 1e-9
        ),
    )
    return cluster.clamp(snapped)
