"""Switch-point extraction over the data-resource space (paper Sec V-A).

A *switch point* is the smaller-relation size at which the best join
implementation flips from broadcast hash join to sort-merge join for a
given resource combination. The paper's Fig 9 plots these surfaces for
Hive and Spark over (container size, number of containers, number of
reducers); Figs 4 and 7 track individual switch points over data size for
execution time and monetary cost respectively.

The metric being compared is pluggable: execution time (default) or
resources consumed (GB-seconds, proportional to serverless dollars), which
is how the monetary switch points of Sec III-C are produced.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.containers import ResourceConfiguration
from repro.engine.joins import (
    JoinAlgorithm,
    bhj_execution,
    smj_execution,
)
from repro.engine.profiles import EngineProfile


class SwitchMetric(enum.Enum):
    """What the two implementations are compared on."""

    TIME = "time"
    MONEY = "money"

    def __str__(self) -> str:
        return self.value


def _metric_value(
    time_s: float, config: ResourceConfiguration, metric: SwitchMetric
) -> float:
    if not math.isfinite(time_s):
        return math.inf
    if metric is SwitchMetric.TIME:
        return time_s
    return config.gb_seconds(time_s)


def compare_joins(
    small_gb: float,
    large_gb: float,
    config: ResourceConfiguration,
    profile: EngineProfile,
    num_reducers: Optional[int] = None,
    metric: SwitchMetric = SwitchMetric.TIME,
) -> JoinAlgorithm:
    """The better implementation at one point of the space."""
    smj = smj_execution(
        small_gb, large_gb, config, profile, num_reducers
    )
    bhj = bhj_execution(small_gb, large_gb, config, profile)
    smj_value = _metric_value(smj.time_s, config, metric)
    bhj_value = _metric_value(bhj.time_s, config, metric)
    return (
        JoinAlgorithm.BROADCAST_HASH
        if bhj_value < smj_value
        else JoinAlgorithm.SORT_MERGE
    )


@dataclass(frozen=True)
class SwitchPoint:
    """One point of the Fig 9 surface.

    ``switch_gb`` is the smallest smaller-relation size at which SMJ wins
    (BHJ is preferred strictly below it); ``wall_gb`` is the BHJ OOM
    feasibility wall for this container size. When BHJ wins everywhere up
    to the wall, ``switch_gb == wall_gb``.
    """

    container_gb: float
    num_containers: int
    num_reducers: Optional[int]
    metric: SwitchMetric
    switch_gb: float
    wall_gb: float

    @property
    def bhj_region_gb(self) -> float:
        """Width of the region where BHJ is the right choice."""
        return self.switch_gb


def find_switch_point(
    profile: EngineProfile,
    large_gb: float,
    config: ResourceConfiguration,
    num_reducers: Optional[int] = None,
    metric: SwitchMetric = SwitchMetric.TIME,
    resolution_gb: float = 0.05,
) -> SwitchPoint:
    """Scan the smaller-relation size axis for the BHJ -> SMJ flip."""
    if resolution_gb <= 0:
        raise ValueError(
            f"resolution_gb must be > 0, got {resolution_gb}"
        )
    wall_gb = profile.hash_memory_fraction * config.container_gb
    switch_gb = wall_gb
    for small_gb in np.arange(resolution_gb, wall_gb, resolution_gb):
        ss = float(min(small_gb, large_gb))
        winner = compare_joins(
            ss, large_gb, config, profile, num_reducers, metric
        )
        if winner is JoinAlgorithm.SORT_MERGE:
            switch_gb = ss
            break
    return SwitchPoint(
        container_gb=config.container_gb,
        num_containers=config.num_containers,
        num_reducers=num_reducers,
        metric=metric,
        switch_gb=float(switch_gb),
        wall_gb=float(wall_gb),
    )


def switch_point_surface(
    profile: EngineProfile,
    large_gb: float,
    container_sizes_gb: Sequence[float],
    container_counts: Sequence[int],
    reducer_settings: Sequence[Optional[int]] = (None,),
    metric: SwitchMetric = SwitchMetric.TIME,
    resolution_gb: float = 0.05,
) -> List[SwitchPoint]:
    """The full Fig 9 surface over the resource grid."""
    points = []
    for num_reducers in reducer_settings:
        for num_containers in container_counts:
            for container_gb in container_sizes_gb:
                config = ResourceConfiguration(
                    num_containers=num_containers,
                    container_gb=container_gb,
                )
                points.append(
                    find_switch_point(
                        profile,
                        large_gb,
                        config,
                        num_reducers,
                        metric,
                        resolution_gb,
                    )
                )
    return points


@dataclass(frozen=True)
class LabeledSample:
    """One training sample for the rule-based RAQO decision trees.

    Features follow the paper's Fig 11 trees: data size, container size,
    concurrent containers, and total containers (tasks per vertex, i.e.
    the reducer count).
    """

    data_gb: float
    container_gb: float
    concurrent_containers: int
    total_containers: int
    label: str  # "BHJ" or "SMJ"

    @property
    def features(self) -> Tuple[float, float, float, float]:
        """The numeric feature vector in Fig 11 order."""
        return (
            self.data_gb,
            self.container_gb,
            float(self.concurrent_containers),
            float(self.total_containers),
        )


#: Feature names used by the decision trees, in `features` order.
TREE_FEATURE_NAMES = (
    "Data Size (GB)",
    "Container Size",
    "Concurrent Containers",
    "Total Containers",
)


def labeled_samples(
    profile: EngineProfile,
    large_gb: float,
    data_sizes_gb: Sequence[float],
    container_sizes_gb: Sequence[float],
    container_counts: Sequence[int],
    reducer_settings: Sequence[Optional[int]] = (None,),
    metric: SwitchMetric = SwitchMetric.TIME,
) -> List[LabeledSample]:
    """Grid-label the space with the faster implementation.

    This is the training set the paper feeds the decision-tree classifier
    ("we ran the decision tree classifier ... over the switch point
    results ... with two target classes namely SMJ and BHJ").
    """
    samples = []
    for num_reducers in reducer_settings:
        for num_containers in container_counts:
            for container_gb in container_sizes_gb:
                config = ResourceConfiguration(
                    num_containers=num_containers,
                    container_gb=container_gb,
                )
                for data_gb in data_sizes_gb:
                    ss = float(min(data_gb, large_gb))
                    winner = compare_joins(
                        ss,
                        large_gb,
                        config,
                        profile,
                        num_reducers,
                        metric,
                    )
                    total = (
                        num_reducers
                        if num_reducers is not None
                        else _auto_total_containers(
                            ss + large_gb, profile
                        )
                    )
                    samples.append(
                        LabeledSample(
                            data_gb=ss,
                            container_gb=container_gb,
                            concurrent_containers=num_containers,
                            total_containers=total,
                            label=(
                                "BHJ"
                                if winner
                                is JoinAlgorithm.BROADCAST_HASH
                                else "SMJ"
                            ),
                        )
                    )
    return samples


def _auto_total_containers(
    data_gb: float, profile: EngineProfile
) -> int:
    from repro.engine.joins import default_num_reducers

    return default_num_reducers(data_gb, profile)
