"""Rule-based RAQO: resource-aware join-implementation selection (Sec V).

Both Hive and Spark ship a *default* rule -- broadcast when the small
relation is under a 10 MB threshold (the trivial one-split trees of the
paper's Fig 10). Rule-based RAQO replaces it with a decision tree learned
over the data-resource space (Fig 11), traversed "using the current
cluster conditions ... and the resources available for the query"; the
leaf gives the implementation to use.

:func:`apply_rule_to_plan` plugs either rule into an existing query plan,
exactly how the paper suggests deploying it: "we still pick the join
operator implementations for each join operator in the query DAG
independently, however, we use the RAQO decision tree instead."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Sequence

from repro.catalog.statistics import StatisticsEstimator
from repro.cluster.containers import ResourceConfiguration
from repro.core.decision_tree import DecisionTreeClassifier
from repro.core.switch_points import (
    LabeledSample,
    SwitchMetric,
    TREE_FEATURE_NAMES,
    labeled_samples,
)
from repro.engine.joins import JoinAlgorithm, default_num_reducers
from repro.engine.profiles import EngineProfile
from repro.planner.plan import JoinNode, PlanNode


class JoinSelectionRule(Protocol):
    """Anything that can pick a join implementation for an operator."""

    def choose(
        self,
        small_gb: float,
        large_gb: float,
        config: ResourceConfiguration,
        num_reducers: Optional[int] = None,
    ) -> JoinAlgorithm:
        """The implementation to use for this operator."""
        ...


@dataclass(frozen=True)
class DefaultThresholdRule:
    """The stock Hive/Spark rule: broadcast below a size threshold.

    Fig 10's "default decision trees": a single split on
    ``Data Size <= threshold``, resource-oblivious.
    """

    threshold_gb: float = 0.010

    def __post_init__(self) -> None:
        if self.threshold_gb <= 0:
            raise ValueError(
                f"threshold_gb must be > 0, got {self.threshold_gb}"
            )

    def choose(
        self,
        small_gb: float,
        large_gb: float,
        config: ResourceConfiguration,
        num_reducers: Optional[int] = None,
    ) -> JoinAlgorithm:
        """Broadcast iff the small relation is under the threshold."""
        if small_gb <= self.threshold_gb:
            return JoinAlgorithm.BROADCAST_HASH
        return JoinAlgorithm.SORT_MERGE

    def export_text(self) -> str:
        """Render the Fig 10 one-split tree."""
        threshold_mb = self.threshold_gb * 1024.0
        return "\n".join(
            (
                f"Data Size (MB) <= {threshold_mb:g} | samples=2 "
                "value=[1, 1] class=BHJ",
                "  True: gini=0.0 samples=1 value=[1, 0] class=BHJ",
                "  False: gini=0.0 samples=1 value=[0, 1] class=SMJ",
            )
        )


class RaqoDecisionTreeRule:
    """The learned, resource-aware rule of the paper's Fig 11."""

    def __init__(
        self,
        tree: DecisionTreeClassifier,
        profile: EngineProfile,
    ) -> None:
        self.tree = tree
        self.profile = profile

    @classmethod
    def train(
        cls,
        profile: EngineProfile,
        large_gb: float,
        data_sizes_gb: Sequence[float],
        container_sizes_gb: Sequence[float],
        container_counts: Sequence[int],
        reducer_settings: Sequence[Optional[int]] = (None,),
        metric: SwitchMetric = SwitchMetric.TIME,
        max_depth: Optional[int] = None,
    ) -> "RaqoDecisionTreeRule":
        """Label the data-resource grid and fit a CART tree on it."""
        samples = labeled_samples(
            profile,
            large_gb,
            data_sizes_gb,
            container_sizes_gb,
            container_counts,
            reducer_settings,
            metric,
        )
        return cls.from_samples(samples, profile, max_depth=max_depth)

    @classmethod
    def from_samples(
        cls,
        samples: Sequence[LabeledSample],
        profile: EngineProfile,
        max_depth: Optional[int] = None,
    ) -> "RaqoDecisionTreeRule":
        """Fit the rule from pre-labelled samples (e.g. workload traces)."""
        tree = DecisionTreeClassifier(max_depth=max_depth)
        tree.fit(
            [sample.features for sample in samples],
            [sample.label for sample in samples],
        )
        return cls(tree=tree, profile=profile)

    def choose(
        self,
        small_gb: float,
        large_gb: float,
        config: ResourceConfiguration,
        num_reducers: Optional[int] = None,
    ) -> JoinAlgorithm:
        """Traverse the tree with the current data and resources."""
        total = num_reducers or default_num_reducers(
            small_gb + large_gb, self.profile
        )
        label = self.tree.predict_one(
            (
                small_gb,
                config.container_gb,
                float(config.num_containers),
                float(total),
            )
        )
        if label == "BHJ":
            # Never recommend a broadcast that cannot fit in memory.
            wall = (
                self.profile.hash_memory_fraction * config.container_gb
            )
            if small_gb <= wall:
                return JoinAlgorithm.BROADCAST_HASH
        return JoinAlgorithm.SORT_MERGE

    def export_text(self) -> str:
        """Render the learned tree in the paper's Fig 11 style."""
        return self.tree.export_text(
            feature_names=TREE_FEATURE_NAMES,
            class_names=["BHJ", "SMJ"],
        )

    @property
    def max_path_length(self) -> int:
        """Longest decision path (paper: 6 for Hive, 7 for Spark)."""
        return self.tree.max_path_length()


def apply_rule_to_plan(
    plan: PlanNode,
    rule: JoinSelectionRule,
    estimator: StatisticsEstimator,
    config: ResourceConfiguration,
    num_reducers: Optional[int] = None,
) -> PlanNode:
    """Re-pick every join's implementation with ``rule``.

    The join order is left untouched; only operator implementations
    change, mirroring how the rule plugs into Hive/Spark.
    """

    def choose(join: JoinNode) -> JoinNode:
        small_gb, large_gb = estimator.join_io_gb(
            join.left.tables, join.right.tables
        )
        algorithm = rule.choose(
            small_gb, large_gb, config, num_reducers
        )
        return join.with_algorithm(algorithm)

    return plan.map_joins(choose)


class RuleBasedOptimizer:
    """Rule-based RAQO as it would deploy inside Hive or Spark.

    The engines keep their existing cost-based *join ordering* (driven
    by cardinalities) and apply a *rule* for each operator's
    implementation. This facade reproduces that split: a Selinger pass
    over the classic output-size metric fixes the order, then the
    supplied rule (the stock 10 MB threshold, or a learned RAQO tree)
    picks every join's implementation for the given resources.
    """

    def __init__(
        self,
        estimator: StatisticsEstimator,
        rule: JoinSelectionRule,
    ) -> None:
        self.estimator = estimator
        self.rule = rule

    def optimize(
        self,
        query: "Query",  # noqa: F821 - documented, imported lazily
        config: ResourceConfiguration,
        num_reducers: Optional[int] = None,
    ) -> PlanNode:
        """Order joins by cardinality, pick implementations by rule."""
        from repro.cluster.cluster import ClusterConditions
        from repro.planner.cost_interface import Cost, PlanningContext
        from repro.planner.selinger import SelingerPlanner

        estimator = self.estimator
        if query.filters:
            estimator = estimator.with_filters(query.filter_factors)

        class _OutputSizeCoster:
            """The classic Cout metric the engines' CBO uses."""

            def join_cost(self, left, right, algorithm, context):
                stats = context.estimator.join_stats(left, right)
                return Cost(time_s=stats.size_gb, money=0.0), None

        context = PlanningContext(
            estimator=estimator,
            cluster=ClusterConditions(
                max_containers=config.num_containers,
                max_container_gb=config.container_gb,
            ),
        )
        ordered = SelingerPlanner(_OutputSizeCoster()).plan(
            query, context
        )
        return apply_rule_to_plan(
            ordered.plan, self.rule, estimator, config, num_reducers
        )
