"""Unit NewTypes, re-exported at the core layer.

The definitions live in :mod:`repro.units` -- a dependency-free leaf
module -- so that the bottom layers (``repro.catalog``,
``repro.cluster``) can annotate their surfaces without importing
through ``repro.core`` (whose ``__init__`` pulls in the planners and
would create an import cycle).  Core-layer code imports from here; the
names are identical objects either way.
"""

from repro.units import (
    GB,
    Containers,
    Dollars,
    DollarsPerHour,
    GBSeconds,
    Rows,
    Seconds,
)

__all__ = [
    "Containers",
    "Dollars",
    "DollarsPerHour",
    "GB",
    "GBSeconds",
    "Rows",
    "Seconds",
]
