"""What-if analysis: plan sensitivity to cluster conditions.

A planning-time companion to the robustness module: instead of committing
to one robust plan, report *how* the optimal joint plan changes across an
envelope sweep -- which conditions flip operator implementations, where
join orders change, and how predicted time scales. This is the
observability surface the paper's "redefining the user's role" discussion
(Sec VIII) asks for: the control knobs a user still holds are exactly the
ones this report makes visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.catalog.queries import Query
from repro.cluster.cluster import ClusterConditions
from repro.core.raqo import RaqoPlanner
from repro.engine.joins import JoinAlgorithm
from repro.planner.plan import PlanNode, join_order, plan_signature


@dataclass(frozen=True)
class WhatIfPoint:
    """The optimal joint plan under one envelope."""

    cluster: ClusterConditions
    plan: PlanNode
    predicted_time_s: float
    predicted_dollars: float

    @property
    def algorithms(self) -> Tuple[JoinAlgorithm, ...]:
        """Operator implementations, bottom-up."""
        return tuple(
            join.algorithm for join in self.plan.joins_postorder()
        )

    @property
    def order(self) -> Tuple[str, ...]:
        """The join order (leaf sequence)."""
        return tuple(join_order(self.plan))


@dataclass(frozen=True)
class WhatIfReport:
    """Sensitivity of a query's joint plan across envelopes."""

    query_name: str
    points: Tuple[WhatIfPoint, ...]

    @property
    def distinct_plans(self) -> int:
        """How many structurally different plans the sweep produced."""
        return len(
            {plan_signature(point.plan) for point in self.points}
        )

    @property
    def plan_changes(self) -> List[int]:
        """Sweep indices at which the optimal plan changed."""
        changes = []
        previous = None
        for index, point in enumerate(self.points):
            signature = plan_signature(point.plan)
            if previous is not None and signature != previous:
                changes.append(index)
            previous = signature
        return changes

    @property
    def time_range(self) -> Tuple[float, float]:
        """(best, worst) predicted time across the sweep."""
        times = [point.predicted_time_s for point in self.points]
        return (min(times), max(times))

    def algorithm_usage(self) -> Dict[JoinAlgorithm, int]:
        """How often each implementation appears across the sweep."""
        usage: Dict[JoinAlgorithm, int] = {
            algorithm: 0 for algorithm in JoinAlgorithm
        }
        for point in self.points:
            for algorithm in point.algorithms:
                usage[algorithm] += 1
        return usage


def what_if(
    planner: RaqoPlanner,
    query: Query,
    clusters: Sequence[ClusterConditions],
) -> WhatIfReport:
    """Optimize ``query`` under each envelope and summarise."""
    if not clusters:
        raise ValueError("need at least one cluster condition")
    original_cluster = planner.cluster
    points = []
    try:
        for cluster in clusters:
            result = planner.replan(query, cluster)
            points.append(
                WhatIfPoint(
                    cluster=cluster,
                    plan=result.plan,
                    predicted_time_s=result.cost.time_s,
                    predicted_dollars=result.cost.money,
                )
            )
    finally:
        # what-if is analysis, not adaptation: leave the planner on the
        # envelope it was configured with.
        planner.cluster = original_cluster
    return WhatIfReport(query_name=query.name, points=tuple(points))


def default_sweep(
    max_containers: int = 100, max_container_gb: float = 10.0
) -> List[ClusterConditions]:
    """A standard shrinking-envelope sweep (100% down to 5%)."""
    fractions = (1.0, 0.6, 0.35, 0.2, 0.1, 0.05)
    sweep = []
    for fraction in fractions:
        sweep.append(
            ClusterConditions(
                max_containers=max(
                    1, int(max_containers * fraction)
                ),
                max_container_gb=max(
                    1.0, max_container_gb * fraction
                ),
            )
        )
    return sweep
