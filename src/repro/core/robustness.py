"""Robust plan selection under cluster-condition uncertainty (Sec VIII).

"Alternatively, RAQO could also pick plans that are more resilient to
changes of cluster condition."

Given a set of cluster-condition *scenarios* (e.g. quiet / busy /
contended envelopes the RM has reported recently), this module:

1. finds each scenario's optimal joint plan,
2. re-costs every candidate plan shape under every scenario (resources
   re-planned per scenario -- plans keep their join order and operator
   implementations, resources adapt),
3. picks the plan minimising either the worst-case cost or the maximum
   regret against the per-scenario optimum.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.catalog.queries import Query
from repro.cluster.cluster import ClusterConditions
from repro.core.raqo import RaqoCoster, RaqoPlanner
from repro.planner.cost_interface import (
    PlanningContext,
    get_plan_cost,
)
from repro.planner.plan import PlanNode, plan_signature


class RobustnessCriterion(enum.Enum):
    """How to aggregate a plan's costs across scenarios."""

    WORST_CASE = "worst_case"
    MINMAX_REGRET = "minmax_regret"

    def __str__(self) -> str:
        return self.value


class RobustnessError(Exception):
    """Raised when no robust plan can be produced."""


@dataclass(frozen=True)
class ScenarioCost:
    """One (plan, scenario) evaluation."""

    scenario_index: int
    time_s: float
    optimal_time_s: float

    @property
    def regret_s(self) -> float:
        """How much slower than the scenario's optimum this plan is."""
        return self.time_s - self.optimal_time_s


@dataclass(frozen=True)
class RobustChoice:
    """The selected plan with its cross-scenario profile."""

    plan: PlanNode
    criterion: RobustnessCriterion
    per_scenario: Tuple[ScenarioCost, ...]

    @property
    def worst_case_s(self) -> float:
        """Worst execution time across scenarios."""
        return max(entry.time_s for entry in self.per_scenario)

    @property
    def max_regret_s(self) -> float:
        """Largest regret against any scenario's optimum."""
        return max(entry.regret_s for entry in self.per_scenario)


def robust_plan(
    planner: RaqoPlanner,
    query: Query,
    scenarios: Sequence[ClusterConditions],
    criterion: RobustnessCriterion = RobustnessCriterion.MINMAX_REGRET,
) -> RobustChoice:
    """Pick the plan that degrades least across ``scenarios``.

    The candidate pool is the set of per-scenario optimal plans (deduped
    by structure); resources are re-planned per scenario when costing a
    candidate elsewhere, so only the plan *shape* is fixed.
    """
    if not scenarios:
        raise RobustnessError("need at least one scenario")

    # 1. Per-scenario optima (also the candidate pool). Robustness
    # analysis must not leave the planner pointed at the last scenario.
    original_cluster = planner.cluster
    optima: List[Tuple[PlanNode, float]] = []
    candidates: Dict[Tuple, PlanNode] = {}
    try:
        for scenario in scenarios:
            result = planner.replan(query, scenario)
            optima.append((result.plan, result.cost.time_s))
            candidates.setdefault(
                plan_signature(result.plan), result.plan
            )
    finally:
        planner.cluster = original_cluster
    if not candidates:
        raise RobustnessError(f"no feasible plan for {query.name!r}")

    # 2. Cross-evaluate every candidate under every scenario.
    coster = RaqoCoster(
        model=planner.cost_model,
        price_model=planner.price_model,
    )
    evaluated: List[RobustChoice] = []
    for plan in candidates.values():
        per_scenario = []
        feasible_everywhere = True
        for index, scenario in enumerate(scenarios):
            context = PlanningContext(
                estimator=planner.estimator, cluster=scenario
            )
            _, cost = get_plan_cost(plan, coster, context)
            if not cost.is_finite:
                feasible_everywhere = False
                break
            per_scenario.append(
                ScenarioCost(
                    scenario_index=index,
                    time_s=cost.time_s,
                    optimal_time_s=optima[index][1],
                )
            )
        if feasible_everywhere:
            evaluated.append(
                RobustChoice(
                    plan=plan,
                    criterion=criterion,
                    per_scenario=tuple(per_scenario),
                )
            )
    if not evaluated:
        raise RobustnessError(
            f"no candidate plan is feasible under all scenarios for "
            f"{query.name!r}"
        )

    # 3. Select by criterion.
    if criterion is RobustnessCriterion.WORST_CASE:
        return min(evaluated, key=lambda choice: choice.worst_case_s)
    return min(evaluated, key=lambda choice: choice.max_regret_s)
