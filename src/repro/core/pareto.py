"""Pareto-frontier resource search and the first-class plan objective.

The paper frames joint optimization as a latency-vs-money trade-off
(Sec VII) but collapses it to a scalar ``money_weight`` knob.  This
module generalizes that to fine-grained multi-objective resource search
in the style of Lyu et al. (arXiv:2207.02026):

- :class:`PlanObjective` -- the declarative objective a caller hands to
  :class:`~repro.core.raqo.RaqoPlanner` / :class:`~repro.api.RaqoSession`
  instead of a float weight: ``fastest()``, ``cheapest()``,
  ``weighted(w)``, ``latency_bounded(budget_s)``, or ``pareto()``.
- :func:`compute_frontier` -- deterministic **per-stage** resource
  search returning the full latency/dollar Pareto frontier of a chosen
  plan: every pipeline stage (one per join, executed at shuffle
  boundaries in postorder) gets its own container/memory allocation,
  costed through the batched ``predict_time_grid_batch`` kernel, and
  the non-dominated set over the stacked (stages x configurations)
  space is computed with a vectorized skyline pass plus an exact scalar
  tail that defers to the shared
  :func:`~repro.planner.cost_interface.frontier` reference.

Determinism contract: frontier points are a pure function of the plan,
the cluster grid, and the cost model -- candidate enumeration follows
grid order (ties fall to the first occurrence, the same discipline as
``cost_batch``'s within-batch memo), kept times are re-predicted
through ``predict_time_rows`` (bit-identical to scalar
``predict_time``), and per-stage costs fold left in stage postorder
(the same summation order as ``get_plan_cost``).  The frontier is
therefore byte-identical across worker counts and process boundaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.containers import ResourceConfiguration
from repro.cluster.pricing import PriceModel
from repro.core.cost_model import JoinCostEstimator
from repro.engine.joins import JoinAlgorithm
from repro.planner.cost_interface import (
    Cost,
    PlanningContext,
    PlanningResult,
    frontier as exact_frontier,
)
from repro.planner.plan import PlanNode

__all__ = [
    "ParetoPlanningResult",
    "ParetoPoint",
    "PlanObjective",
    "ResourceFrontier",
    "StageRequirement",
    "compute_frontier",
]

#: ``PlanObjective.parse`` grammar, shared with the CLI ``--objective``
#: flag's help text and error messages.
OBJECTIVE_SPECS = "fastest|cheapest|weighted:W|latency-bound:S|pareto"


@dataclass(frozen=True)
class PlanObjective:
    """A declarative planning objective over (latency, dollars).

    Construct through the factory classmethods (or :meth:`parse` for
    the CLI spelling); the dataclass fields are an implementation
    detail of the value type::

        session.plan("Q3", objective=PlanObjective.cheapest())
        PlanObjective.parse("latency-bound:30")

    ``fastest`` and ``weighted(w)`` scalarise exactly like the historic
    ``money_weight`` float (``weighted(w)`` is bit-identical to the
    deprecated ``money_weight=w``), so they add zero planning work.
    ``cheapest``, ``latency_bounded`` and ``pareto`` additionally run
    the per-stage frontier search (:func:`compute_frontier`) over the
    chosen plan and pick a frontier point.
    """

    kind: str
    #: Dollars-per-second trade-off for ``weighted``; unused otherwise.
    weight: float = 0.0
    #: Latency budget for ``latency_bounded``; ``inf`` otherwise.
    budget_s: float = math.inf

    _KINDS = ("fastest", "cheapest", "weighted", "latency_bounded", "pareto")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(
                f"unknown objective kind {self.kind!r} "
                f"(expected one of {', '.join(self._KINDS)})"
            )
        if self.kind == "weighted" and not (
            math.isfinite(self.weight) and self.weight >= 0.0
        ):
            raise ValueError(
                f"weighted objective needs a finite weight >= 0, "
                f"got {self.weight!r}"
            )
        if self.kind == "latency_bounded" and not (
            math.isfinite(self.budget_s) and self.budget_s > 0.0
        ):
            raise ValueError(
                f"latency_bounded objective needs a finite budget > 0 s, "
                f"got {self.budget_s!r}"
            )

    # -- factories ---------------------------------------------------------

    @classmethod
    def fastest(cls) -> "PlanObjective":
        """Minimize execution time (the paper's main experiments)."""
        return cls(kind="fastest")

    @classmethod
    def cheapest(cls) -> "PlanObjective":
        """Minimize dollars; ties fall to the faster point."""
        return cls(kind="cheapest")

    @classmethod
    def weighted(cls, weight: float) -> "PlanObjective":
        """Minimize ``time_s + weight * money`` (legacy ``money_weight``)."""
        return cls(kind="weighted", weight=float(weight))

    @classmethod
    def latency_bounded(cls, budget_s: float) -> "PlanObjective":
        """The cheapest frontier point with ``time_s <= budget_s``.

        Falls back to the fastest point when no frontier point meets
        the budget (the budget is then simply unattainable on this
        cluster; the selection is still deterministic).
        """
        return cls(kind="latency_bounded", budget_s=float(budget_s))

    @classmethod
    def pareto(cls) -> "PlanObjective":
        """Return the whole frontier; execute the fastest point."""
        return cls(kind="pareto")

    # -- CLI / serving surface ---------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "PlanObjective":
        """Parse the CLI spelling: ``fastest|cheapest|weighted:W|latency-bound:S|pareto``."""
        text = spec.strip().lower()
        simple = {
            "fastest": cls.fastest,
            "cheapest": cls.cheapest,
            "pareto": cls.pareto,
        }
        if text in simple:
            return simple[text]()
        head, sep, tail = text.partition(":")
        if sep:
            try:
                value = float(tail)
            except ValueError:
                value = math.nan
            if head == "weighted" and math.isfinite(value) and value >= 0:
                return cls.weighted(value)
            if (
                head in ("latency-bound", "latency_bound")
                and math.isfinite(value)
                and value > 0
            ):
                return cls.latency_bounded(value)
        raise ValueError(
            f"invalid objective {spec!r}: expected {OBJECTIVE_SPECS}"
        )

    def fingerprint(self) -> str:
        """A stable string identity for cache keys.

        Two planners share serving-cache entries only when their
        objectives fingerprint identically; ``repr`` of the float
        parameters keeps the string exact and process-stable.
        """
        if self.kind == "weighted":
            return f"weighted:{self.weight!r}"
        if self.kind == "latency_bounded":
            return f"latency-bound:{self.budget_s!r}"
        return self.kind

    def __str__(self) -> str:
        return self.fingerprint()

    # -- planner integration -----------------------------------------------

    @property
    def time_weight(self) -> float:
        """The search scalarisation's time coefficient."""
        return 0.0 if self.kind == "cheapest" else 1.0

    @property
    def money_weight(self) -> float:
        """The search scalarisation's money coefficient."""
        if self.kind == "weighted":
            return self.weight
        if self.kind == "cheapest":
            return 1.0
        return 0.0

    @property
    def needs_frontier(self) -> bool:
        """True when planning must run the per-stage frontier search."""
        return self.kind in ("cheapest", "latency_bounded", "pareto")

    def select(
        self, resource_frontier: "ResourceFrontier"
    ) -> Optional["ParetoPoint"]:
        """Pick this objective's point from a computed frontier.

        The frontier is sorted by ascending time (strictly descending
        money), so the fastest point is first and the cheapest last.
        Returns ``None`` on an empty frontier.
        """
        points = resource_frontier.points
        if not points:
            return None
        if self.kind == "cheapest":
            return points[-1]
        if self.kind == "latency_bounded":
            within = [p for p in points if p.time_s <= self.budget_s]
            # The cheapest point meeting the budget is the *last* one
            # within it; an unattainable budget degrades to fastest.
            return within[-1] if within else points[0]
        return points[0]


@dataclass(frozen=True)
class StageRequirement:
    """What one pipeline stage asks of the cost model.

    The executor runs one stage per join, sequentially at shuffle
    boundaries in postorder, so a stage is fully described by its join
    algorithm and the (smaller, larger) input sizes.
    """

    algorithm: JoinAlgorithm
    small_gb: float
    large_gb: float


@dataclass(frozen=True)
class ParetoPoint:
    """One non-dominated (latency, dollars) point and its allocations.

    ``configs`` holds one :class:`ResourceConfiguration` per pipeline
    stage, in the plan's join postorder -- the per-stage resource axes
    that achieve this trade-off.
    """

    time_s: float
    money: float
    configs: Tuple[ResourceConfiguration, ...]

    @property
    def cost(self) -> Cost:
        """The point as a planner :class:`Cost` vector."""
        return Cost(time_s=self.time_s, money=self.money)


@dataclass(frozen=True)
class ResourceFrontier:
    """The exact latency/dollar Pareto frontier of one plan.

    ``points`` is sorted by ascending ``time_s`` (strictly descending
    ``money``); every pair of points is mutually non-dominated.
    ``dominated_pruned`` counts the candidate (stage x configuration)
    points the skyline passes discarded on the way.
    """

    points: Tuple[ParetoPoint, ...]
    dominated_pruned: int
    stages: Tuple[StageRequirement, ...]

    def __len__(self) -> int:
        return len(self.points)

    @property
    def fastest(self) -> Optional[ParetoPoint]:
        """The minimum-latency point (None on an empty frontier)."""
        return self.points[0] if self.points else None

    @property
    def cheapest(self) -> Optional[ParetoPoint]:
        """The minimum-dollar point (None on an empty frontier)."""
        return self.points[-1] if self.points else None

    @property
    def time_span(self) -> float:
        """Latency spread between the fastest and cheapest points."""
        if not self.points:
            return 0.0
        return self.points[-1].time_s - self.points[0].time_s

    @property
    def money_span(self) -> float:
        """Dollar spread between the fastest and cheapest points."""
        if not self.points:
            return 0.0
        return self.points[0].money - self.points[-1].money


@dataclass(frozen=True)
class ParetoPlanningResult(PlanningResult):
    """A planning result carrying the resource frontier and selection.

    ``cost`` and ``plan`` reflect the frontier point the objective
    selected (per-stage resources annotated onto the joins);
    ``search_cost`` preserves what the join-order search itself found
    before frontier selection.
    """

    frontier: Optional[ResourceFrontier] = None
    objective: Optional[PlanObjective] = None
    selected: Optional[ParetoPoint] = None
    search_cost: Optional[Cost] = None


def _weak_skyline_candidates(
    times: np.ndarray, money: np.ndarray
) -> np.ndarray:
    """Indexes surviving the vectorized weak-dominance skyline pass.

    Sorts by (time, money) -- the stable lexsort keeps candidate order
    within exact ties -- and prunes every point whose money is
    *strictly* above the running minimum of all earlier-sorted points:
    those are dominated outright by a strictly cheaper, no-slower
    point.  Tie candidates (equal money at the running minimum, or
    equal (time, money) duplicates) are deliberately *kept*: they are
    coupled through the first-occurrence discipline and are resolved by
    the exact scalar tail, which defers to the shared
    :func:`~repro.planner.cost_interface.frontier` reference.
    Returned indexes are in sorted (time, money, candidate) order.
    """
    order = np.lexsort((money, times))
    money_sorted = money[order]
    keep = np.empty(order.shape[0], dtype=bool)
    keep[0] = True
    running = np.minimum.accumulate(money_sorted)
    keep[1:] = money_sorted[1:] <= running[:-1]
    return order[keep]


def _stage_key(
    model: JoinCostEstimator, stage: StageRequirement
) -> Tuple[str, float, float]:
    """The stage-dedup memo key (``cost_batch``'s memo discipline)."""
    return (
        model.model_key(stage.algorithm),
        stage.small_gb,
        stage.large_gb,
    )


def _stage_frontiers(
    stages: Sequence[StageRequirement],
    model: JoinCostEstimator,
    price_model: PriceModel,
    context: PlanningContext,
) -> Tuple[Dict[Tuple, Tuple[np.ndarray, np.ndarray, List[int]]], int]:
    """Exact per-stage frontiers for every *distinct* stage.

    Distinct stages (the ``cost_batch`` memo key: model key + input
    sizes) are grouped by algorithm and costed through one stacked
    ``predict_time_grid_batch`` call per algorithm -- the PR-5 numpy
    path.  Kept candidates are re-predicted through
    ``predict_time_rows`` so the frontier's times are bit-identical to
    scalar ``predict_time`` calls, then resolved exactly by the shared
    scalar :func:`~repro.planner.cost_interface.frontier` tail.

    Returns ``(stage_key -> (times, money, config_indexes), pruned)``.
    """
    counters = context.counters
    grid = context.cluster.config_grid()
    rate = price_model.dollars_per_gb_hour
    by_algorithm: Dict[JoinAlgorithm, List[StageRequirement]] = {}
    seen = set()
    for stage in stages:
        key = _stage_key(model, stage)
        if key in seen:
            continue
        seen.add(key)
        by_algorithm.setdefault(stage.algorithm, []).append(stage)

    frontiers: Dict[Tuple, Tuple[np.ndarray, np.ndarray, List[int]]] = {}
    pruned = 0
    for algorithm, rows in by_algorithm.items():
        small = np.asarray([s.small_gb for s in rows])
        large = np.asarray([s.large_gb for s in rows])
        # Counted exactly like the batched kernel: one resource
        # iteration per (stage, configuration) pair, distinct stages
        # only (memo'd repeats are free, as in cost_batch).
        counters.resource_iterations += grid.num_configs * len(rows)
        times = model.predict_time_grid_batch(algorithm, small, large, grid)
        times = np.where(np.isnan(times), math.inf, times)
        money = grid.total_memory_gb * times / 3600.0 * rate
        for position, stage in enumerate(rows):
            stage_times = times[position]
            stage_money = money[position]
            feasible = np.flatnonzero(np.isfinite(stage_times))
            if feasible.size == 0:
                frontiers[_stage_key(model, stage)] = (
                    np.empty(0),
                    np.empty(0),
                    [],
                )
                continue
            admitted = feasible[
                _weak_skyline_candidates(
                    stage_times[feasible], stage_money[feasible]
                )
            ]
            # Re-predict the admitted candidates lane-for-lane (the
            # kernel's winner-recompute discipline): reported times are
            # then bit-identical to scalar predict_time, and the money
            # expression matches the scalar
            # cost_of_gb_seconds(config.gb_seconds(t)) chain.
            kept_counts = grid.counts[admitted]
            kept_sizes = grid.sizes[admitted]
            kept_times = model.predict_time_rows(
                algorithm,
                np.full(admitted.shape[0], stage.small_gb),
                np.full(admitted.shape[0], stage.large_gb),
                kept_sizes,
                kept_counts,
            )
            kept_money = (
                kept_counts * kept_sizes * kept_times / 3600.0 * rate
            )
            # Exact scalar tail over the admitted survivors, walked in
            # grid order so equal-cost couples resolve to the first
            # configuration the scalar scan would have seen.
            grid_order = np.argsort(admitted, kind="stable")
            entries = [
                (
                    int(admitted[i]),
                    Cost(
                        time_s=float(kept_times[i]),
                        money=float(kept_money[i]),
                    ),
                )
                for i in grid_order
            ]
            kept = exact_frontier(entries)
            pruned += int(feasible.size) - len(kept)
            frontiers[_stage_key(model, stage)] = (
                np.asarray([cost.time_s for _, cost in kept]),
                np.asarray([cost.money for _, cost in kept]),
                [index for index, _ in kept],
            )
    return frontiers, pruned


def compute_frontier(
    plan: PlanNode,
    context: PlanningContext,
    model: JoinCostEstimator,
    price_model: PriceModel,
) -> ResourceFrontier:
    """The exact latency/dollar Pareto frontier of ``plan``.

    Stage frontiers (one stage per join, postorder) are combined with a
    Minkowski fold: both objectives are additive across sequentially
    executed stages, so each fold sums an accumulated frontier with the
    next stage's and re-runs the skyline (vectorized weak pass + exact
    scalar tail).  Candidate order within a fold is accumulated-point
    major, stage-configuration minor -- deterministic and
    worker-count-independent.  The fold's left-to-right additions use
    the same order as ``get_plan_cost``'s postorder summation, so a
    frontier point whose per-stage configurations match the search's
    choices reproduces the searched plan cost bit for bit.

    An infeasible stage (no feasible configuration at all) yields an
    empty frontier; a plan with no joins yields the single zero-cost
    point.  Counters: ``resource_iterations`` ticks exactly like the
    batched kernel, ``dominated_pruned``/``frontier_points`` record the
    skyline's work on ``context.counters``.
    """
    stages = tuple(
        StageRequirement(
            algorithm=join.algorithm,
            small_gb=float(small_gb),
            large_gb=float(large_gb),
        )
        for join in plan.joins_postorder()
        for small_gb, large_gb in (
            context.join_io_gb(join.left.tables, join.right.tables),
        )
    )
    counters = context.counters
    if not stages:
        frontier = ResourceFrontier(
            points=(ParetoPoint(time_s=0.0, money=0.0, configs=()),),
            dominated_pruned=0,
            stages=(),
        )
        counters.frontier_points += 1
        return frontier

    stage_frontiers, pruned = _stage_frontiers(
        stages, model, price_model, context
    )
    grid = context.cluster.config_grid()
    #: Winning configurations cluster on few grid points (same
    #: observation as the batched kernel); materialise each once.
    config_cache: Dict[int, ResourceConfiguration] = {}

    def config_at(index: int) -> ResourceConfiguration:
        config = config_cache.get(index)
        if config is None:
            config = grid.config_at(index)
            config_cache[index] = config
        return config

    acc_times: Optional[np.ndarray] = None
    acc_money: Optional[np.ndarray] = None
    acc_configs: List[Tuple[int, ...]] = []
    for stage in stages:
        s_times, s_money, s_configs = stage_frontiers[
            _stage_key(model, stage)
        ]
        if len(s_configs) == 0:
            return ResourceFrontier(
                points=(), dominated_pruned=pruned, stages=stages
            )
        if acc_times is None:
            acc_times = s_times
            acc_money = s_money
            acc_configs = [(index,) for index in s_configs]
            continue
        # Minkowski sum of the accumulated frontier and this stage's;
        # flattened C-order = accumulated-point major, so candidate
        # order (and therefore every tie-break) is deterministic.
        cand_times = (acc_times[:, None] + s_times[None, :]).ravel()
        cand_money = (acc_money[:, None] + s_money[None, :]).ravel()
        admitted = _weak_skyline_candidates(cand_times, cand_money)
        admitted = np.sort(admitted)  # back to candidate order
        width = len(s_configs)
        entries = [
            (
                int(flat),
                Cost(
                    time_s=float(cand_times[flat]),
                    money=float(cand_money[flat]),
                ),
            )
            for flat in admitted
        ]
        kept = exact_frontier(entries)
        pruned += cand_times.shape[0] - len(kept)
        acc_times = np.asarray([cost.time_s for _, cost in kept])
        acc_money = np.asarray([cost.money for _, cost in kept])
        acc_configs = [
            acc_configs[flat // width] + (s_configs[flat % width],)
            for flat, _ in kept
        ]

    assert acc_times is not None and acc_money is not None
    points = tuple(
        ParetoPoint(
            time_s=float(acc_times[i]),
            money=float(acc_money[i]),
            configs=tuple(config_at(index) for index in acc_configs[i]),
        )
        for i in range(acc_times.shape[0])
    )
    counters.dominated_pruned += pruned
    counters.frontier_points += len(points)
    return ResourceFrontier(
        points=points, dominated_pruned=pruned, stages=stages
    )
