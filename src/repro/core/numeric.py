"""Sanctioned float comparisons for cost values (RAQO004's escape hatch).

Costs flow through learned models and vectorized kernels; raw ``==`` on
them is either a tie-break bug waiting for a reordered reduction or a
disguised zero-check.  Every cost-equality decision in the repo goes
through these two helpers so the tolerance policy is auditable in one
place -- the linter (rule RAQO004, float-cost-compare) bans raw
equality everywhere else.

The defaults are deliberately tight: planner tie-breaks must stay
*bit-identical* between the scalar and vectorized paths, so these
helpers default to exact semantics extended to infinities, with the
tolerances available for callers that genuinely mean "close enough".
"""

from __future__ import annotations

import math

#: Relative tolerance used when a caller asks for approximate equality.
DEFAULT_REL_TOL = 1e-9
#: Absolute tolerance floor (covers comparisons around zero).
DEFAULT_ABS_TOL = 1e-12


def costs_equal(
    a: float,
    b: float,
    rel_tol: float = 0.0,
    abs_tol: float = 0.0,
) -> bool:
    """Whether two cost values are equal under the given tolerances.

    With the default zero tolerances this is exact equality that also
    treats equal infinities as equal (two infeasible costs compare
    equal) and NaN as unequal to everything, matching IEEE semantics
    while keeping the comparison intention explicit at the call site.
    """
    if math.isnan(a) or math.isnan(b):
        return False
    if math.isinf(a) or math.isinf(b):
        return a == b
    if rel_tol == 0.0 and abs_tol == 0.0:
        return a == b
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


def is_effectively_zero(
    value: float, abs_tol: float = DEFAULT_ABS_TOL
) -> bool:
    """Whether a cost value is zero up to ``abs_tol`` (NaN is not)."""
    if math.isnan(value):
        return False
    return abs(value) <= abs_tol
