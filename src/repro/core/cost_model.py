"""Learned operator cost models: ``f(data, resources) -> cost``.

Sec VI-A: "we perform a regression analysis to learn the query costs as a
function of the input data and resources ... we trained linear regression
models for SMJ and BHJ using smaller input size (ss), container size (cs),
and the number of containers (nc) as features. We further augmented the
feature set with the following non-linear functions: ss^2, cs^2, nc^2, and
(cs*nc)."

Two feature maps are provided:

- ``PAPER_FEATURES`` -- exactly the paper's seven-feature vector
  ``[ss, ss^2, cs, cs^2, nc, nc^2, cs*nc]``. Faithful, but blind to the
  larger input's size (the paper profiled a single query where the large
  side was fixed).
- ``EXTENDED_FEATURES`` -- adds the larger input size and the dominant
  reciprocal-parallelism interactions (``ls, ls/nc, ss/nc, ss*nc``),
  which a planner costing *different* joins of a query needs. This is
  the default for the planning experiments and is documented as a
  necessary generalisation in EXPERIMENTS.md.

Models are ordinary least squares (the paper used sklearn's
``LinearRegression``; numpy's ``lstsq`` is the same estimator).
:class:`SimulatorCostModel` provides an oracle with the same interface,
backed directly by the engine simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.cluster import ConfigurationGrid
from repro.cluster.containers import ResourceConfiguration
from repro.core.units import GB, Seconds
from repro.engine.joins import JoinAlgorithm, join_execution, join_time_grid
from repro.engine.profiler import ProfileSample
from repro.engine.profiles import EngineProfile

#: Predictions are clipped below this floor: a linear model extrapolating
#: far from its training grid can go negative, which would break planners.
MIN_PREDICTED_TIME_S = 1e-3


@dataclass(frozen=True)
class FeatureMap:
    """A named feature transform over (ss, ls, cs, nc)."""

    name: str
    feature_names: Tuple[str, ...]
    transform: Callable[[float, float, float, float], Tuple[float, ...]]

    def __call__(
        self, small_gb: GB, large_gb: GB, config: ResourceConfiguration
    ) -> np.ndarray:
        values = self.transform(
            small_gb,
            large_gb,
            config.container_gb,
            float(config.num_containers),
        )
        return np.asarray(values, dtype=float)

    def batch(
        self,
        small_gb: float,
        large_gb: float,
        container_gb: np.ndarray,
        num_containers: np.ndarray,
    ) -> np.ndarray:
        """The ``(N, F)`` feature matrix for N resource configurations.

        The transform runs once on whole arrays (the feature expressions
        are elementwise arithmetic, so numpy computes the same IEEE
        values as the scalar path). Transforms that are not
        numpy-compatible fall back to per-row evaluation.
        """
        cs = np.asarray(container_gb, dtype=float)
        nc = np.asarray(num_containers, dtype=float)
        try:
            values = self.transform(small_gb, large_gb, cs, nc)
            columns = [
                np.broadcast_to(np.asarray(v, dtype=float), cs.shape)
                for v in values
            ]
            return np.stack(columns, axis=1)
        except Exception:
            rows = [
                self.transform(small_gb, large_gb, float(c), float(n))
                for c, n in zip(cs, nc)
            ]
            return np.asarray(rows, dtype=float)

    def stacked(
        self,
        small_gbs: np.ndarray,
        large_gbs: np.ndarray,
        container_gb: np.ndarray,
        num_containers: np.ndarray,
    ) -> Tuple[np.ndarray, ...]:
        """Feature columns for M candidates x N configurations.

        Returns one ``(M, N)`` array per feature. The data axes enter as
        column vectors and the resource axes as row vectors, so the
        transform's elementwise arithmetic broadcasts to the full
        candidate-by-configuration plane without copying either axis --
        every candidate shares the same zero-copy grid arrays. Each lane
        runs the same IEEE operations as the scalar transform, so values
        are bit-identical to M separate :meth:`batch` calls.
        """
        ss = np.asarray(small_gbs, dtype=float)[:, None]
        ls = np.asarray(large_gbs, dtype=float)[:, None]
        cs = np.asarray(container_gb, dtype=float)[None, :]
        nc = np.asarray(num_containers, dtype=float)[None, :]
        shape = (ss.shape[0], cs.shape[1])
        values = self.transform(ss, ls, cs, nc)
        return tuple(
            np.broadcast_to(np.asarray(v, dtype=float), shape)
            for v in values
        )

    def __len__(self) -> int:
        return len(self.feature_names)


def _paper_transform(
    ss: float, ls: float, cs: float, nc: float
) -> Tuple[float, ...]:
    return (ss, ss * ss, cs, cs * cs, nc, nc * nc, cs * nc)


def _extended_transform(
    ss: float, ls: float, cs: float, nc: float
) -> Tuple[float, ...]:
    return (
        ss,
        ss * ss,
        cs,
        cs * cs,
        nc,
        nc * nc,
        cs * nc,
        ls,
        ls / nc,
        ss / nc,
        ss * nc,
    )


#: The paper's exact feature vector (Sec VI-A).
PAPER_FEATURES = FeatureMap(
    name="paper7",
    feature_names=("ss", "ss^2", "cs", "cs^2", "nc", "nc^2", "cs*nc"),
    transform=_paper_transform,
)

#: Generalised features for planning arbitrary joins (see module doc).
EXTENDED_FEATURES = FeatureMap(
    name="extended",
    feature_names=(
        "ss",
        "ss^2",
        "cs",
        "cs^2",
        "nc",
        "nc^2",
        "cs*nc",
        "ls",
        "ls/nc",
        "ss/nc",
        "ss*nc",
    ),
    transform=_extended_transform,
)


@dataclass(frozen=True)
class OperatorCostModel:
    """A fitted linear model predicting one operator's execution time."""

    algorithm: JoinAlgorithm
    feature_map: FeatureMap
    coefficients: Tuple[float, ...]
    intercept: float

    def __post_init__(self) -> None:
        if len(self.coefficients) != len(self.feature_map):
            raise ValueError(
                f"{self.algorithm} model: expected "
                f"{len(self.feature_map)} coefficients, got "
                f"{len(self.coefficients)}"
            )

    def predict(
        self,
        small_gb: GB,
        large_gb: GB,
        config: ResourceConfiguration,
    ) -> Seconds:
        """Predicted execution time in seconds (clipped positive).

        Non-finite predictions (overflowing extrapolations, corrupted
        coefficients) surface as infinity, which planners already treat
        as "infeasible" -- they must never be silently compared as NaN.

        The dot product is accumulated feature by feature (not through
        BLAS): :meth:`predict_grid` accumulates its per-configuration
        lanes in exactly the same order, which is what makes the two
        paths bit-identical (BLAS dot vs matmul kernels can differ by
        ULPs, enough to flip argmin tie-breaks).
        """
        features = self.feature_map(small_gb, large_gb, config)
        acc = 0.0
        for coefficient, feature in zip(self.coefficients, features):
            acc = acc + coefficient * float(feature)
        raw = self.intercept + acc
        if math.isnan(raw):
            return Seconds(math.inf)
        return Seconds(max(raw, MIN_PREDICTED_TIME_S))

    def predict_grid(
        self,
        small_gb: GB,
        large_gb: GB,
        counts: np.ndarray,
        sizes: np.ndarray,
    ) -> np.ndarray:
        """Batched :meth:`predict` over a whole configuration grid.

        A handful of column-accumulated array operations replace N
        feature builds and dot products; each configuration's lane runs
        the same multiply-add sequence as :meth:`predict`, so the batch
        matches the scalar path value for value. NaN predictions surface
        as ``inf`` and the same positive floor is applied.
        """
        features = self.feature_map.batch(
            small_gb, large_gb, sizes, counts
        )
        acc = np.zeros(features.shape[0])
        for column, coefficient in enumerate(self.coefficients):
            acc = acc + coefficient * features[:, column]
        raw = self.intercept + acc
        raw = np.where(np.isnan(raw), math.inf, raw)
        return np.maximum(raw, MIN_PREDICTED_TIME_S)

    def predict_grid_stacked(
        self,
        small_gbs: np.ndarray,
        large_gbs: np.ndarray,
        counts: np.ndarray,
        sizes: np.ndarray,
    ) -> np.ndarray:
        """:meth:`predict_grid` for M candidates at once: an ``(M, N)``
        matrix of predicted times.

        Row ``m`` accumulates the same coefficient-by-coefficient
        multiply-add sequence as ``predict_grid(small_gbs[m], ...)``, so
        each row is bit-identical to the per-candidate call. Transforms
        that reject 2-D inputs fall back to stacking per-candidate grid
        predictions.
        """
        small = np.asarray(small_gbs, dtype=float)
        large = np.asarray(large_gbs, dtype=float)
        if small.size == 0:
            return np.zeros((0, len(counts)))
        try:
            values = self.feature_map.transform(
                small[:, None],
                large[:, None],
                np.asarray(sizes, dtype=float)[None, :],
                np.asarray(counts, dtype=float)[None, :],
            )
        except Exception:
            return np.stack(
                [
                    self.predict_grid(
                        float(ss), float(ls), counts, sizes
                    )
                    for ss, ls in zip(small, large)
                ]
            )
        # Accumulate the un-broadcast feature values directly: the
        # scalar multiply runs on the small (M, 1) or (1, N) operand
        # and only the in-place add sweeps the full (M, N) plane. Each
        # lane still sees the exact `acc + coef * column` IEEE sequence
        # of the per-candidate path, at a fraction of the memory
        # traffic of materializing every broadcast column.
        acc = np.zeros((small.shape[0], len(counts)))
        for value, coefficient in zip(values, self.coefficients):
            acc += coefficient * np.asarray(value, dtype=float)
        raw = self.intercept + acc
        raw = np.where(np.isnan(raw), math.inf, raw)
        return np.maximum(raw, MIN_PREDICTED_TIME_S)

    def predict_rows(
        self,
        small_gbs: np.ndarray,
        large_gbs: np.ndarray,
        container_gb: np.ndarray,
        num_containers: np.ndarray,
    ) -> np.ndarray:
        """Vectorized :meth:`predict` over N independent rows.

        Unlike :meth:`predict_grid_stacked` there is no cross product:
        row ``n`` pairs candidate ``n`` with *its own* configuration
        (the batched planner's per-winner recompute). The feature
        expressions are elementwise arithmetic and the accumulation
        runs coefficient by coefficient, so each lane performs exactly
        the IEEE operation sequence of the scalar call -- bit-identical
        results. Transforms that reject array inputs fall back to the
        per-row scalar path.
        """
        ss = np.asarray(small_gbs, dtype=float)
        ls = np.asarray(large_gbs, dtype=float)
        cs = np.asarray(container_gb, dtype=float)
        nc = np.asarray(num_containers, dtype=float)
        if ss.size == 0:
            return np.zeros(0)
        try:
            values = self.feature_map.transform(ss, ls, cs, nc)
            columns = [
                np.broadcast_to(np.asarray(v, dtype=float), ss.shape)
                for v in values
            ]
        except Exception:
            return np.asarray(
                [
                    self.predict(
                        GB(float(s)),
                        GB(float(l)),
                        ResourceConfiguration(
                            num_containers=int(round(float(n))),
                            container_gb=float(c),
                        ),
                    )
                    for s, l, c, n in zip(ss, ls, cs, nc)
                ]
            )
        acc = np.zeros(ss.shape)
        for column, coefficient in zip(columns, self.coefficients):
            acc = acc + coefficient * column
        raw = self.intercept + acc
        raw = np.where(np.isnan(raw), math.inf, raw)
        return np.maximum(raw, MIN_PREDICTED_TIME_S)

    @classmethod
    def fit(
        cls,
        algorithm: JoinAlgorithm,
        samples: Sequence[ProfileSample],
        feature_map: FeatureMap = EXTENDED_FEATURES,
    ) -> "OperatorCostModel":
        """Ordinary least squares over feasible profile runs."""
        usable = [
            s for s in samples if s.algorithm is algorithm and s.feasible
        ]
        if len(usable) < len(feature_map) + 1:
            raise ValueError(
                f"need at least {len(feature_map) + 1} samples to fit "
                f"the {algorithm} model, got {len(usable)}"
            )
        rows = []
        targets = []
        for sample in usable:
            config = ResourceConfiguration(
                num_containers=sample.num_containers,
                container_gb=sample.container_gb,
            )
            features = feature_map(
                GB(sample.small_gb), GB(sample.large_gb), config
            )
            rows.append(np.concatenate(([1.0], features)))
            targets.append(sample.time_s)
        design = np.vstack(rows)
        y = np.asarray(targets)
        solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        return cls(
            algorithm=algorithm,
            feature_map=feature_map,
            coefficients=tuple(float(c) for c in solution[1:]),
            intercept=float(solution[0]),
        )

    def r_squared(self, samples: Sequence[ProfileSample]) -> float:
        """Coefficient of determination on a sample set."""
        usable = [
            s
            for s in samples
            if s.algorithm is self.algorithm and s.feasible
        ]
        if not usable:
            raise ValueError("no usable samples")
        predictions = []
        actuals = []
        for sample in usable:
            config = ResourceConfiguration(
                num_containers=sample.num_containers,
                container_gb=sample.container_gb,
            )
            predictions.append(
                self.predict(
                    GB(sample.small_gb), GB(sample.large_gb), config
                )
            )
            actuals.append(sample.time_s)
        predicted = np.asarray(predictions)
        actual = np.asarray(actuals)
        residual = float(np.sum((actual - predicted) ** 2))
        total = float(np.sum((actual - actual.mean()) ** 2))
        if total == 0:
            return 1.0 if residual == 0 else 0.0
        return 1.0 - residual / total


class JoinCostEstimator:
    """Interface shared by learned suites and the simulator oracle."""

    #: BHJ is infeasible when ss exceeds this fraction of the container.
    hash_memory_fraction: float

    def predict_time(
        self,
        algorithm: JoinAlgorithm,
        small_gb: GB,
        large_gb: GB,
        config: ResourceConfiguration,
    ) -> Seconds:
        """Predicted execution time; ``inf`` when infeasible."""
        raise NotImplementedError

    def predict_time_grid(
        self,
        algorithm: JoinAlgorithm,
        small_gb: GB,
        large_gb: GB,
        grid: ConfigurationGrid,
    ) -> np.ndarray:
        """Predicted times for every configuration in a grid.

        The base implementation loops over :meth:`predict_time`, so any
        estimator supports the batched interface; subclasses override it
        with genuinely vectorized evaluations (one matmul for learned
        models, elementwise array math for the simulator oracle).
        """
        return np.fromiter(
            (
                self.predict_time(algorithm, small_gb, large_gb, config)
                for config in grid.configurations()
            ),
            dtype=float,
            count=grid.num_configs,
        )

    def predict_time_grid_batch(
        self,
        algorithm: JoinAlgorithm,
        small_gbs: np.ndarray,
        large_gbs: np.ndarray,
        grid: ConfigurationGrid,
    ) -> np.ndarray:
        """Predicted times for M candidates x every grid configuration.

        The base implementation stacks per-candidate
        :meth:`predict_time_grid` rows, so every estimator supports the
        batched planner path; :class:`CostModelSuite` overrides it with
        one stacked kernel evaluation for the whole ``(M, N)`` plane.
        Row ``m`` always equals ``predict_time_grid(algorithm,
        small_gbs[m], large_gbs[m], grid)`` bit for bit.
        """
        rows = [
            self.predict_time_grid(
                algorithm, float(ss), float(ls), grid
            )
            for ss, ls in zip(small_gbs, large_gbs)
        ]
        if not rows:
            return np.zeros((0, grid.num_configs))
        return np.stack(rows)

    def predict_time_rows(
        self,
        algorithm: JoinAlgorithm,
        small_gbs: np.ndarray,
        large_gbs: np.ndarray,
        container_gb: np.ndarray,
        num_containers: np.ndarray,
    ) -> np.ndarray:
        """Predicted times for N (candidate, configuration) pairs.

        Row ``n`` pairs ``small_gbs[n]``/``large_gbs[n]`` with its own
        configuration -- the batched kernel's per-winner recompute shape.
        The base implementation loops over :meth:`predict_time`;
        :class:`CostModelSuite` overrides it with one elementwise array
        evaluation. Row ``n`` always equals ``predict_time(algorithm,
        small_gbs[n], large_gbs[n], config_n)`` bit for bit.
        """
        return np.fromiter(
            (
                self.predict_time(
                    algorithm,
                    float(ss),
                    float(ls),
                    ResourceConfiguration(
                        num_containers=int(round(float(nc))),
                        container_gb=float(cs),
                    ),
                )
                for ss, ls, cs, nc in zip(
                    small_gbs, large_gbs, container_gb, num_containers
                )
            ),
            dtype=float,
            count=len(np.asarray(small_gbs)),
        )

    def bhj_feasible(
        self, small_gb: GB, config: ResourceConfiguration
    ) -> bool:
        """The broadcast-fits-in-memory wall (Sec VIII: "a broadcast join
        requires one relation to fit in memory")."""
        return small_gb <= self.hash_memory_fraction * config.container_gb

    def model_key(self, algorithm: JoinAlgorithm) -> str:
        """Stable identifier for resource-plan-cache partitioning."""
        return f"{type(self).__name__}:{algorithm.value}"


class CostModelSuite(JoinCostEstimator):
    """One learned :class:`OperatorCostModel` per join implementation."""

    def __init__(
        self,
        models: Dict[JoinAlgorithm, OperatorCostModel],
        hash_memory_fraction: float,
    ) -> None:
        missing = [a for a in JoinAlgorithm if a not in models]
        if missing:
            raise ValueError(f"missing models for {missing}")
        if hash_memory_fraction <= 0:
            raise ValueError(
                "hash_memory_fraction must be > 0, got "
                f"{hash_memory_fraction}"
            )
        self.models = dict(models)
        self.hash_memory_fraction = hash_memory_fraction

    def predict_time(
        self,
        algorithm: JoinAlgorithm,
        small_gb: GB,
        large_gb: GB,
        config: ResourceConfiguration,
    ) -> Seconds:
        if algorithm is JoinAlgorithm.BROADCAST_HASH and not (
            self.bhj_feasible(small_gb, config)
        ):
            return math.inf
        return self.models[algorithm].predict(small_gb, large_gb, config)

    def predict_time_grid(
        self,
        algorithm: JoinAlgorithm,
        small_gb: GB,
        large_gb: GB,
        grid: ConfigurationGrid,
    ) -> np.ndarray:
        """One batched model evaluation for the whole grid (plus the
        BHJ memory wall applied as a vector mask)."""
        times = self.models[algorithm].predict_grid(
            small_gb, large_gb, grid.counts, grid.sizes
        )
        if algorithm is JoinAlgorithm.BROADCAST_HASH:
            infeasible = small_gb > (
                self.hash_memory_fraction * grid.sizes
            )
            times = np.where(infeasible, math.inf, times)
        return times

    def predict_time_grid_batch(
        self,
        algorithm: JoinAlgorithm,
        small_gbs: np.ndarray,
        large_gbs: np.ndarray,
        grid: ConfigurationGrid,
    ) -> np.ndarray:
        """One stacked model evaluation for all M candidates x the grid.

        The BHJ memory wall broadcasts the same per-lane comparison as
        :meth:`predict_time_grid`, so rows stay bit-identical to the
        per-candidate calls.
        """
        small = np.asarray(small_gbs, dtype=float)
        large = np.asarray(large_gbs, dtype=float)
        times = self.models[algorithm].predict_grid_stacked(
            small, large, grid.counts, grid.sizes
        )
        if algorithm is JoinAlgorithm.BROADCAST_HASH and small.size:
            infeasible = small[:, None] > (
                self.hash_memory_fraction * grid.sizes
            )
            times = np.where(infeasible, math.inf, times)
        return times

    def predict_time_rows(
        self,
        algorithm: JoinAlgorithm,
        small_gbs: np.ndarray,
        large_gbs: np.ndarray,
        container_gb: np.ndarray,
        num_containers: np.ndarray,
    ) -> np.ndarray:
        """One elementwise model evaluation for all N winner rows.

        Applies the BHJ memory wall as the same per-lane comparison as
        :meth:`predict_time`, so rows stay bit-identical to per-winner
        scalar calls.
        """
        small = np.asarray(small_gbs, dtype=float)
        times = self.models[algorithm].predict_rows(
            small, large_gbs, container_gb, num_containers
        )
        if algorithm is JoinAlgorithm.BROADCAST_HASH and small.size:
            infeasible = small > (
                self.hash_memory_fraction
                * np.asarray(container_gb, dtype=float)
            )
            times = np.where(infeasible, math.inf, times)
        return times

    @classmethod
    def train(
        cls,
        samples: Iterable[ProfileSample],
        hash_memory_fraction: float,
        feature_map: FeatureMap = EXTENDED_FEATURES,
    ) -> "CostModelSuite":
        """Fit one model per implementation from profile runs."""
        sample_list = list(samples)
        models = {
            algorithm: OperatorCostModel.fit(
                algorithm, sample_list, feature_map
            )
            for algorithm in JoinAlgorithm
        }
        return cls(models, hash_memory_fraction)

    @classmethod
    def train_from_profile(
        cls,
        profile: EngineProfile,
        feature_map: FeatureMap = EXTENDED_FEATURES,
        large_gb: GB = GB(77.0),
    ) -> "CostModelSuite":
        """Profile the engine simulator and fit (the paper's workflow)."""
        from repro.engine.profiler import default_training_grid

        samples = default_training_grid(profile, large_gb=large_gb)
        return cls.train(
            samples, profile.hash_memory_fraction, feature_map
        )


class SimulatorCostModel(JoinCostEstimator):
    """An oracle estimator backed directly by the engine simulator.

    Useful to separate planner-quality questions from cost-model-quality
    questions (the paper's Sec VI-A notes model tuning is orthogonal).
    """

    def __init__(
        self,
        profile: EngineProfile,
        num_reducers: Optional[int] = None,
    ) -> None:
        self.profile = profile
        self.num_reducers = num_reducers
        self.hash_memory_fraction = profile.hash_memory_fraction

    def predict_time(
        self,
        algorithm: JoinAlgorithm,
        small_gb: GB,
        large_gb: GB,
        config: ResourceConfiguration,
    ) -> Seconds:
        execution = join_execution(
            algorithm,
            small_gb,
            large_gb,
            config,
            self.profile,
            num_reducers=self.num_reducers,
        )
        return Seconds(execution.time_s)

    def predict_time_grid(
        self,
        algorithm: JoinAlgorithm,
        small_gb: GB,
        large_gb: GB,
        grid: ConfigurationGrid,
    ) -> np.ndarray:
        """Vectorized analytic oracle over the whole grid."""
        return join_time_grid(
            algorithm,
            small_gb,
            large_gb,
            grid.counts,
            grid.sizes,
            self.profile,
            num_reducers=self.num_reducers,
        )

    def model_key(self, algorithm: JoinAlgorithm) -> str:
        return f"simulator:{self.profile.name}:{algorithm.value}"
