"""Cost-based RAQO: resource planning inside the query planner (Sec VI-C).

Two :class:`~repro.planner.cost_interface.PlanCoster` implementations:

- :class:`QueryOptimizerCoster` ("QO") -- the current practice: the query
  planner costs sub-plans against one fixed resource configuration chosen
  up front, resources are not part of the search.
- :class:`RaqoCoster` ("RAQO") -- the paper's approach: every time the
  query planner asks for a sub-plan cost, the coster first *plans the
  resources* for that operator (brute force or Algorithm 1 hill climbing,
  with an optional resource plan cache) and returns the cost at the chosen
  configuration, annotating the join with it.

:class:`RaqoPlanner` is the user-facing facade wiring a catalog, cluster
conditions, a cost model, a query planner (Selinger or FastRandomized) and
a coster together, including the adaptive re-planning flow of Sec IV
("if the cluster conditions change ... the runtime can further adjust the
query/resource plan by consulting the optimizer").
"""

from __future__ import annotations

import dataclasses
import enum
import math
import threading
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple, Union

import numpy as np

from repro.catalog.queries import Query
from repro.catalog.schema import Catalog
from repro.catalog.statistics import StatisticsEstimator
from repro.cluster.cluster import ClusterConditions
from repro.cluster.containers import ResourceConfiguration
from repro.cluster.pricing import PriceModel
from repro.core.cost_model import (
    CostModelSuite,
    EXTENDED_FEATURES,
    FeatureMap,
    JoinCostEstimator,
    SimulatorCostModel,
)
from repro.core.pareto import (
    ParetoPlanningResult,
    PlanObjective,
    compute_frontier,
)
from repro.core.plan_cache import LookupMode, ResourcePlanCache
from repro.core.resource_planner import (
    ResourcePlanOutcome,
    ResourcePlanningError,
    brute_force_resource_plan,
    feasible_bhj_start,
    hill_climb_resource_plan,
)
from repro.engine.profiles import EngineProfile, HIVE_PROFILE
from repro.engine.joins import JoinAlgorithm
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.planner.cost_interface import (
    BatchCostResult,
    Cost,
    INFEASIBLE_COST,
    PlanningContext,
    PlanningResult,
    cost_batch_scalar,
)
from repro.planner.plan import CandidateBatch
from repro.planner.randomized import FastRandomizedPlanner
from repro.planner.selinger import SelingerPlanner, _counters_delta

#: The fixed configuration the two-step baseline costs plans against
#: (a typical static Hive deployment default: 10 x 4 GB containers).
DEFAULT_QO_RESOURCES = ResourceConfiguration(
    num_containers=10, container_gb=4.0
)

#: The paper's Sec VII evaluation cluster: 100 containers of up to 10 GB,
#: discrete steps of 1 on both axes.
DEFAULT_CLUSTER = ClusterConditions(
    max_containers=100, max_container_gb=10.0
)


class ResourcePlanningMethod(enum.Enum):
    """How the RAQO coster searches the resource space."""

    HILL_CLIMB = "hill_climb"
    BRUTE_FORCE = "brute_force"

    def __str__(self) -> str:
        return self.value


class PlannerKind(enum.Enum):
    """Which query planner drives the join-order search."""

    SELINGER = "selinger"
    FAST_RANDOMIZED = "fast_randomized"

    def __str__(self) -> str:
        return self.value


@dataclass
class QueryOptimizerCoster:
    """The two-step baseline: cost plans at one fixed configuration."""

    model: JoinCostEstimator
    default_resources: ResourceConfiguration = DEFAULT_QO_RESOURCES
    price_model: PriceModel = field(default_factory=PriceModel)

    def join_cost(
        self,
        left_tables: FrozenSet[str],
        right_tables: FrozenSet[str],
        algorithm: JoinAlgorithm,
        context: PlanningContext,
    ) -> Tuple[Cost, Optional[ResourceConfiguration]]:
        """Cost one join at the fixed default resources."""
        small_gb, large_gb = context.join_io_gb(left_tables, right_tables)
        config = context.cluster.clamp(self.default_resources)
        time_s = self.model.predict_time(
            algorithm, small_gb, large_gb, config
        )
        if not math.isfinite(time_s):
            return INFEASIBLE_COST, None
        money = self.price_model.cost_of_gb_seconds(
            config.gb_seconds(time_s)
        )
        # The two-step baseline does not emit per-operator resources;
        # they are chosen later, outside the optimizer.
        return Cost(time_s=time_s, money=money), None

    def cost_batch(
        self, batch: CandidateBatch, context: PlanningContext
    ) -> BatchCostResult:
        """Batched protocol for the baseline: per-candidate costing.

        The fixed-configuration coster has no resource grid to stack,
        so the batch runs through the scalar reference loop.
        """
        return cost_batch_scalar(self, batch, context)


@dataclass
class RaqoCoster:
    """The RAQO coster: ``getPlanCost`` extended with resource planning.

    ``money_weight``/``time_weight`` scalarise the resource-planning
    objective (``time_weight * time + money_weight * money``); the
    default optimizes execution time as in the paper's main
    experiments, and :class:`PlanObjective` derives both weights for
    the planner facade (``cheapest`` plans with ``time_weight=0``).

    Two fast-path layers sit in front of the resource planner:

    - ``memoize``: a per-planning-run memo keyed by ``(algorithm, ss,
      ls)``. Query planners request the same sub-plan costing many times
      (Selinger re-extends overlapping subsets; the randomized planner
      revisits joins across restarts); repeats return the previously
      planned cost without touching the plan cache or the planner.
      The memo lives on the :class:`PlanningContext`, so its lifetime is
      exactly one planning run.
    - ``vectorized``: brute-force resource planning costs the whole
      configuration grid through the model's batched
      ``predict_time_grid`` (a few array operations for learned models)
      instead of one scalar call per configuration. The winner is
      bit-identical to the scalar scan; only the wall-clock changes.
    """

    model: JoinCostEstimator
    method: ResourcePlanningMethod = ResourcePlanningMethod.HILL_CLIMB
    cache: Optional[ResourcePlanCache] = None
    price_model: PriceModel = field(default_factory=PriceModel)
    money_weight: float = 0.0
    time_weight: float = 1.0
    memoize: bool = True
    vectorized: bool = True

    def join_cost(
        self,
        left_tables: FrozenSet[str],
        right_tables: FrozenSet[str],
        algorithm: JoinAlgorithm,
        context: PlanningContext,
    ) -> Tuple[Cost, Optional[ResourceConfiguration]]:
        """Plan resources for this operator, then cost it there."""
        small_gb, large_gb = context.join_io_gb(left_tables, right_tables)
        memo_key = None
        if self.memoize:
            memo_key = (
                self.model.model_key(algorithm),
                small_gb,
                large_gb,
                self.money_weight,
                self.time_weight,
            )
            memoized = context.resource_plan_memo.get(memo_key)
            if memoized is not None:
                context.counters.memo_hits += 1
                return memoized
        result = self._plan_and_cost(
            algorithm, small_gb, large_gb, context
        )
        if memo_key is not None:
            context.resource_plan_memo[memo_key] = result
        return result

    # Candidate classifications used by :meth:`cost_batch`. Finished
    # candidates (memo hits and within-batch aliases) need no further
    # work; CACHED/WALL candidates resolved inline (cache hit / BHJ
    # memory wall); KERNEL candidates go through the stacked grid
    # kernel; TAIL candidates must replay the scalar path sequentially
    # because their cache lookup depends on an earlier candidate's
    # insert.
    _DONE, _CACHED, _WALL, _KERNEL, _TAIL = range(5)

    def cost_batch(
        self, batch: CandidateBatch, context: PlanningContext
    ) -> BatchCostResult:
        """Cost a whole candidate batch through one stacked kernel.

        The batch is partitioned *in candidate order* into memo hits,
        cache hits, and kernel rows; the kernel then costs all rows of
        one algorithm against the full resource grid in a single
        ``predict_time_grid_batch`` call (N candidates x G
        configurations, zero-copy shared grid axes). Candidates whose
        plan-cache lookup could observe an insert made by an *earlier*
        candidate of the same batch are deferred to a sequential tail
        that replays the exact scalar semantics, so every observable --
        chosen configurations, costs, counters, cache statistics, and
        traced span trees -- is bit-identical to costing the candidates
        one at a time. Hill climbing and non-vectorized costers fall
        back to the scalar reference loop.
        """
        if (
            self.method is not ResourcePlanningMethod.BRUTE_FORCE
            or not self.vectorized
        ):
            return cost_batch_scalar(self, batch, context)
        counters = context.counters
        counters.batched_calls += 1
        context.batch_sizes.append(len(batch))
        n = len(batch)
        times = np.full(n, math.inf)
        money = np.full(n, math.inf)
        configs: List[Optional[ResourceConfiguration]] = [None] * n
        kinds = [self._DONE] * n
        cache_hit = [False] * n
        alias_of: Dict[int, int] = {}
        memo_keys: List[Optional[Tuple]] = [None] * n
        #: First in-batch candidate computing each memo key.
        batch_first: Dict[Tuple, int] = {}
        #: (model_key -> smaller-input keys) of candidates that may
        #: still insert into the plan cache (kernel rows and tail).
        pending: Dict[str, List[float]] = {}
        if self.cache is not None and (
            self.cache.mode is not LookupMode.EXACT
        ):
            threshold = self.cache.threshold_gb
        else:
            threshold = 0.0

        def commit(
            index: int, result: Tuple[Cost, Optional[ResourceConfiguration]]
        ) -> None:
            cost, config = result
            times[index] = cost.time_s
            money[index] = cost.money
            configs[index] = config
            memo_key = memo_keys[index]
            if memo_key is not None:
                context.resource_plan_memo[memo_key] = result

        # Loop-invariant lookups hoisted out of the per-candidate scan:
        # model keys are pure per-algorithm strings, and the BHJ wall is
        # `feasible_bhj_start(...) is None`, which only compares
        # small_gb / hash_memory_fraction against the largest container.
        model_keys = {
            algorithm: self.model.model_key(algorithm)
            for algorithm in dict.fromkeys(batch.algorithms)
        }
        bhj_fraction = self.model.hash_memory_fraction
        bhj_max_gb = context.cluster.dimension("container_gb").maximum

        # Phase 1 -- partition, visiting candidates in scalar order.
        kernel_rows: List[int] = []
        for i in range(n):
            algorithm = batch.algorithms[i]
            small_gb = float(batch.small_gb[i])
            large_gb = float(batch.large_gb[i])
            model_key = model_keys[algorithm]
            if self.memoize:
                memo_key = (
                    model_key,
                    small_gb,
                    large_gb,
                    self.money_weight,
                    self.time_weight,
                )
                memoized = context.resource_plan_memo.get(memo_key)
                if memoized is not None:
                    counters.memo_hits += 1
                    counters.batch_memo_hits += 1
                    cost, config = memoized
                    times[i] = cost.time_s
                    money[i] = cost.money
                    configs[i] = config
                    continue
                first = batch_first.get(memo_key)
                if first is not None:
                    # A duplicate of a still-pending candidate: by the
                    # time the scalar loop reached it, the first
                    # occurrence's result would be memoized.
                    counters.memo_hits += 1
                    counters.batch_memo_hits += 1
                    alias_of[i] = first
                    continue
                batch_first[memo_key] = i
                memo_keys[i] = memo_key
            if self.cache is not None and any(
                abs(small_gb - other) <= threshold
                for other in pending.get(model_key, ())
            ):
                # The scalar loop would have inserted the pending
                # candidate's configuration before this lookup ran;
                # replay this candidate sequentially after the kernel.
                kinds[i] = self._TAIL
                pending.setdefault(model_key, []).append(small_gb)
                continue
            config = self._cached_config(
                algorithm, small_gb, large_gb, context
            )
            if config is not None:
                # Cache hits are validated feasible by _cached_config.
                cache_hit[i] = True
                kinds[i] = self._CACHED
                time_s = self.model.predict_time(
                    algorithm, small_gb, large_gb, config
                )
                if not math.isfinite(time_s):
                    commit(i, (INFEASIBLE_COST, None))
                    continue
                commit(
                    i,
                    (
                        Cost(
                            time_s=time_s,
                            money=self.price_model.cost_of_gb_seconds(
                                config.gb_seconds(time_s)
                            ),
                        ),
                        config,
                    ),
                )
                continue
            if algorithm is JoinAlgorithm.BROADCAST_HASH:
                if small_gb < 0:
                    raise ResourcePlanningError(
                        f"small_gb must be >= 0, got {small_gb}"
                    )
                if small_gb / bhj_fraction > bhj_max_gb:
                    kinds[i] = self._WALL
                    commit(i, (INFEASIBLE_COST, None))
                    continue
            kinds[i] = self._KERNEL
            kernel_rows.append(i)
            pending.setdefault(model_key, []).append(small_gb)

        # Phase 2 -- one stacked kernel call per algorithm present.
        if kernel_rows:
            self._run_kernel(batch, kernel_rows, context, commit)

        # Phase 3 -- sequential tail + span emission, in candidate
        # order (span ordinals under the plan span must match the
        # scalar loop's creation order).
        tracer = context.tracer
        for i in range(n):
            kind = kinds[i]
            if kind == self._TAIL:
                result = self._plan_and_cost(
                    batch.algorithms[i],
                    float(batch.small_gb[i]),
                    float(batch.large_gb[i]),
                    context,
                )
                commit(i, result)
            elif tracer.active and kind != self._DONE:
                self._emit_candidate_span(
                    batch, i, kind, cache_hit[i], times, configs, context
                )
        for i, source in alias_of.items():
            times[i] = times[source]
            money[i] = money[source]
            configs[i] = configs[source]
        feasible = np.isfinite(times) & np.isfinite(money)
        return BatchCostResult(
            time_s=times,
            money=money,
            feasible=feasible,
            configs=tuple(configs),
        )

    def _run_kernel(
        self,
        batch: CandidateBatch,
        kernel_rows: List[int],
        context: PlanningContext,
        commit,
    ) -> None:
        """Grid-cost all kernel rows, one stacked call per algorithm."""
        grid = context.cluster.config_grid()
        if grid.num_configs == 0:
            raise ResourcePlanningError(
                "cluster offers no configurations"
            )
        by_algorithm: Dict[JoinAlgorithm, List[int]] = {}
        for i in kernel_rows:
            by_algorithm.setdefault(batch.algorithms[i], []).append(i)
        #: Winners cluster on few grid points; materialise each once.
        config_cache: Dict[int, ResourceConfiguration] = {}
        for algorithm, rows in by_algorithm.items():
            small = batch.small_gb[rows]
            large = batch.large_gb[rows]
            # Counted exactly like the scalar scan: one resource
            # iteration per (candidate, configuration) pair.
            context.counters.resource_iterations += (
                grid.num_configs * len(rows)
            )
            times = self.model.predict_time_grid_batch(
                algorithm, small, large, grid
            )
            times = np.where(np.isnan(times), math.inf, times)
            if self.money_weight:
                # Same inlined expression as the scalar grid objective,
                # broadcast over the candidate axis.
                money = (
                    grid.total_memory_gb
                    * times
                    / 3600.0
                    * self.price_model.dollars_per_gb_hour
                )
                if self.time_weight == 1.0:
                    objective = times + self.money_weight * money
                else:
                    # 0 * inf is NaN, so the wash below matters when
                    # time_weight vanishes (the cheapest objective).
                    with np.errstate(invalid="ignore"):
                        objective = (
                            self.time_weight * times
                            + self.money_weight * money
                        )
                objective = np.where(
                    np.isnan(objective), math.inf, objective
                )
            else:
                # `times` is already NaN-washed; no second pass needed.
                objective = times
            # First-occurrence argmin per row = the scalar tie-break.
            best = np.argmin(objective, axis=1)
            model_key = self.model.model_key(algorithm)
            # Recompute the winners' unweighted times in one elementwise
            # call (the scalar path re-predicts after its argmin too);
            # each lane is bit-identical to a per-winner predict_time.
            winner_counts = grid.counts[best]
            winner_sizes = grid.sizes[best]
            winner_times = self.model.predict_time_rows(
                algorithm,
                small,
                large,
                winner_sizes,
                winner_counts,
            )
            # Same left-to-right expression as the scalar
            # `cost_of_gb_seconds(config.gb_seconds(time_s))` chain:
            # ((nc * cs) * t) / 3600 * rate, lane for lane.
            winner_money = (
                winner_counts
                * winner_sizes
                * winner_times
                / 3600.0
                * self.price_model.dollars_per_gb_hour
            )
            for position, i in enumerate(rows):
                best_index = int(best[position])
                best_cost = float(objective[position, best_index])
                if not math.isfinite(best_cost):
                    raise ResourcePlanningError(
                        "cluster offers no configurations"
                    )
                config = config_cache.get(best_index)
                if config is None:
                    config = grid.config_at(best_index)
                    config_cache[best_index] = config
                small_gb = float(batch.small_gb[i])
                if self.cache is not None:
                    self.cache.insert(model_key, small_gb, config)
                time_s = float(winner_times[position])
                if not math.isfinite(time_s):
                    commit(i, (INFEASIBLE_COST, None))
                    continue
                commit(
                    i,
                    (
                        Cost(
                            time_s=time_s,
                            money=float(winner_money[position]),
                        ),
                        config,
                    ),
                )

    def _emit_candidate_span(
        self,
        batch: CandidateBatch,
        index: int,
        kind: int,
        hit: bool,
        times: np.ndarray,
        configs: List[Optional[ResourceConfiguration]],
        context: PlanningContext,
    ) -> None:
        """Emit the spans the scalar path would have for one candidate.

        Batched costing computes results out of band, so the
        ``resource-planning`` (and, for kernel rows, ``grid-costing``)
        spans are materialized afterwards with the same nesting,
        creation order, and attributes as :meth:`_plan_and_cost` --
        canonical span trees stay byte-identical to the scalar run.
        """
        with context.tracer.span(
            "resource-planning", kind="planner"
        ) as span:
            if kind == self._KERNEL:
                grid = context.cluster.config_grid()
                with context.tracer.span(
                    "grid-costing", kind="planner"
                ) as inner:
                    inner.set_attribute(
                        "iterations", grid.num_configs
                    )
            time_s = float(times[index])
            config = configs[index]
            span.set_attributes(
                {
                    "algorithm": batch.algorithms[index].value,
                    "small_gb": float(batch.small_gb[index]),
                    "large_gb": float(batch.large_gb[index]),
                    "cache_hit": hit,
                    "feasible": math.isfinite(time_s),
                }
            )
            if math.isfinite(time_s):
                span.set_attribute("cost_time_s", time_s)
            if config is not None:
                span.set_attributes(
                    {
                        "num_containers": config.num_containers,
                        "container_gb": config.container_gb,
                    }
                )

    def _plan_and_cost(
        self,
        algorithm: JoinAlgorithm,
        small_gb: float,
        large_gb: float,
        context: PlanningContext,
    ) -> Tuple[Cost, Optional[ResourceConfiguration]]:
        """The memo-miss path: cache lookup, then resource planning."""
        if not context.tracer.active:
            return self._plan_and_cost_impl(
                algorithm, small_gb, large_gb, context
            )
        with context.tracer.span(
            "resource-planning", kind="planner"
        ) as span:
            before_hits = context.counters.cache_hits
            cost, config = self._plan_and_cost_impl(
                algorithm, small_gb, large_gb, context
            )
            span.set_attributes(
                {
                    "algorithm": algorithm.value,
                    "small_gb": small_gb,
                    "large_gb": large_gb,
                    "cache_hit": context.counters.cache_hits
                    > before_hits,
                    "feasible": cost.is_finite,
                }
            )
            if cost.is_finite:
                span.set_attribute("cost_time_s", cost.time_s)
            if config is not None:
                span.set_attributes(
                    {
                        "num_containers": config.num_containers,
                        "container_gb": config.container_gb,
                    }
                )
            return cost, config

    def _plan_and_cost_impl(
        self,
        algorithm: JoinAlgorithm,
        small_gb: float,
        large_gb: float,
        context: PlanningContext,
    ) -> Tuple[Cost, Optional[ResourceConfiguration]]:
        config = self._cached_config(
            algorithm, small_gb, large_gb, context
        )
        if config is None:
            outcome = self._plan_resources(
                algorithm, small_gb, large_gb, context
            )
            if outcome is None or not math.isfinite(outcome.cost):
                return INFEASIBLE_COST, None
            config = outcome.config
            if self.cache is not None:
                self.cache.insert(
                    self.model.model_key(algorithm), small_gb, config
                )
        time_s = self.model.predict_time(
            algorithm, small_gb, large_gb, config
        )
        if not math.isfinite(time_s):
            return INFEASIBLE_COST, None
        money = self.price_model.cost_of_gb_seconds(
            config.gb_seconds(time_s)
        )
        return Cost(time_s=time_s, money=money), config

    def _cached_config(
        self,
        algorithm: JoinAlgorithm,
        small_gb: float,
        large_gb: float,
        context: PlanningContext,
    ) -> Optional[ResourceConfiguration]:
        """Try the resource plan cache; validates feasibility on hits."""
        if self.cache is None:
            return None
        config = self.cache.lookup(
            self.model.model_key(algorithm), small_gb, context.cluster
        )
        if config is not None and not math.isfinite(
            self.model.predict_time(algorithm, small_gb, large_gb, config)
        ):
            # A neighbour's configuration may violate this operator's
            # memory wall; fall back to planning.
            config = None
        if config is None:
            context.counters.cache_misses += 1
        else:
            context.counters.cache_hits += 1
        return config

    def _plan_resources(
        self,
        algorithm: JoinAlgorithm,
        small_gb: float,
        large_gb: float,
        context: PlanningContext,
    ) -> Optional[ResourcePlanOutcome]:
        """Run brute force or Algorithm 1 for one operator."""
        cluster = context.cluster
        counters = context.counters

        def objective(config: ResourceConfiguration) -> float:
            counters.resource_iterations += 1
            time_s = self.model.predict_time(
                algorithm, small_gb, large_gb, config
            )
            if not math.isfinite(time_s):
                return math.inf
            if self.money_weight:
                money = self.price_model.cost_of_gb_seconds(
                    config.gb_seconds(time_s)
                )
                if self.time_weight == 1.0:
                    return time_s + self.money_weight * money
                # time_s is finite here, so no 0 * inf hazard.
                return (
                    self.time_weight * time_s
                    + self.money_weight * money
                )
            return time_s

        def grid_objective(grid) -> np.ndarray:
            # One batched model call for the whole grid; counted exactly
            # like the scalar scan (one iteration per configuration).
            counters.resource_iterations += grid.num_configs
            times = self.model.predict_time_grid(
                algorithm, small_gb, large_gb, grid
            )
            times = np.where(np.isnan(times), math.inf, times)
            if self.money_weight:
                # Inlined PriceModel.cost_of_gb_seconds (it rejects
                # arrays); same expression, so bit-identical to scalar.
                money = (
                    grid.total_memory_gb
                    * times
                    / 3600.0
                    * self.price_model.dollars_per_gb_hour
                )
                if self.time_weight == 1.0:
                    return times + self.money_weight * money
                # 0 * inf is NaN; wash so infeasible stays infeasible.
                with np.errstate(invalid="ignore"):
                    weighted = (
                        self.time_weight * times
                        + self.money_weight * money
                    )
                return np.where(np.isnan(weighted), math.inf, weighted)
            return times

        start: Optional[ResourceConfiguration] = None
        if algorithm is JoinAlgorithm.BROADCAST_HASH:
            start = feasible_bhj_start(
                small_gb, self.model.hash_memory_fraction, cluster
            )
            if start is None:
                return None

        def search() -> Optional[ResourcePlanOutcome]:
            if self.method is ResourcePlanningMethod.BRUTE_FORCE:
                if self.vectorized:
                    return brute_force_resource_plan(
                        objective,
                        cluster,
                        vectorized=True,
                        grid_cost_fn=grid_objective,
                    )
                return brute_force_resource_plan(objective, cluster)
            return hill_climb_resource_plan(
                objective, cluster, start=start
            )

        if not context.tracer.active:
            return search()
        span_name = (
            "grid-costing"
            if self.method is ResourcePlanningMethod.BRUTE_FORCE
            else "hill-climb"
        )
        with context.tracer.span(span_name, kind="planner") as span:
            outcome = search()
            if outcome is not None:
                span.set_attribute("iterations", outcome.iterations)
            return outcome


# Trained default models are expensive to fit; share them per profile.
# The cache is module-level state and therefore shared by every worker
# thread of the parallel WorkloadRunner, so all access is serialized.
_MODEL_CACHE_LOCK = threading.Lock()
_DEFAULT_MODEL_CACHE: Dict[Tuple[str, str], CostModelSuite] = {}  # lint: guarded-by=_MODEL_CACHE_LOCK


def default_cost_model(
    profile: EngineProfile = HIVE_PROFILE,
    feature_map: FeatureMap = EXTENDED_FEATURES,
) -> CostModelSuite:
    """The default learned cost model for an engine profile (memoised).

    Thread-safe: concurrent first calls for the same key serialize on
    the cache lock, so exactly one suite is fitted and every caller
    (including the parallel workload runner's workers) shares it.
    Training is deterministic, so holding the lock across the fit
    trades a one-time wait for never fitting the same model twice.
    """
    key = (profile.name, feature_map.name)
    with _MODEL_CACHE_LOCK:
        suite = _DEFAULT_MODEL_CACHE.get(key)
        if suite is None:
            suite = CostModelSuite.train_from_profile(
                profile, feature_map=feature_map
            )
            _DEFAULT_MODEL_CACHE[key] = suite
        return suite


class RaqoPlanner:
    """The joint Resource-And-Query-Optimization planner facade.

    Wires together a catalog, the current cluster conditions, a cost
    model, a coster (RAQO or the two-step baseline), and a query planner.
    ``optimize`` returns a
    :class:`~repro.planner.cost_interface.PlanningResult` whose plan
    carries per-operator resource configurations (for RAQO).
    """

    def __init__(
        self,
        catalog: Catalog,
        cluster: ClusterConditions = DEFAULT_CLUSTER,
        cost_model: Optional[JoinCostEstimator] = None,
        planner_kind: PlannerKind = PlannerKind.SELINGER,
        resource_method: ResourcePlanningMethod = (
            ResourcePlanningMethod.HILL_CLIMB
        ),
        cache_mode: Optional[LookupMode] = LookupMode.NEAREST,
        cache_threshold_gb: float = 0.0,
        clear_cache_between_queries: bool = True,
        resource_aware: bool = True,
        default_resources: ResourceConfiguration = DEFAULT_QO_RESOURCES,
        price_model: Optional[PriceModel] = None,
        objective: Optional[PlanObjective] = None,
        money_weight: Optional[float] = None,
        randomized_iterations: int = 10,
        seed: int = 0,
        memoize_within_run: bool = True,
        vectorized_resource_planning: bool = True,
        batched_costing: bool = True,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if money_weight is not None:
            if objective is not None:
                raise TypeError(
                    "pass objective=..., not both objective= and the "
                    "deprecated money_weight="
                )
            warnings.warn(
                "money_weight= is deprecated; pass "
                "objective=PlanObjective.weighted(w) instead "
                "(PlanObjective.fastest() replaces money_weight=0)",
                DeprecationWarning,
                stacklevel=2,
            )
            objective = PlanObjective.weighted(money_weight)
        if objective is None:
            objective = PlanObjective.fastest()
        # Everything needed to build an equivalent planner (clone()).
        # The resolved objective is stored (never money_weight), so
        # clones and worker processes rebuild without re-warning.
        self._init_kwargs = dict(
            cluster=cluster,
            cost_model=cost_model,
            planner_kind=planner_kind,
            resource_method=resource_method,
            cache_mode=cache_mode,
            cache_threshold_gb=cache_threshold_gb,
            clear_cache_between_queries=clear_cache_between_queries,
            resource_aware=resource_aware,
            default_resources=default_resources,
            price_model=price_model,
            objective=objective,
            randomized_iterations=randomized_iterations,
            seed=seed,
            memoize_within_run=memoize_within_run,
            vectorized_resource_planning=vectorized_resource_planning,
            batched_costing=batched_costing,
            tracer=tracer,
        )
        self.objective = objective
        self.catalog = catalog
        self.cluster = cluster
        #: Shared (thread-safe) observability sink; clones reuse it so a
        #: parallel workload's spans land in one trace.
        self.tracer: Tracer = tracer if tracer is not None else NULL_TRACER
        self.estimator = StatisticsEstimator(catalog)
        self.cost_model = cost_model or default_cost_model()
        self.price_model = price_model or PriceModel()
        self.clear_cache_between_queries = clear_cache_between_queries
        self.resource_aware = resource_aware

        self.cache: Optional[ResourcePlanCache] = None
        if resource_aware and cache_mode is not None:
            self.cache = ResourcePlanCache(
                mode=cache_mode, threshold_gb=cache_threshold_gb
            )

        if resource_aware:
            self.coster: Union[RaqoCoster, QueryOptimizerCoster] = (
                RaqoCoster(
                    model=self.cost_model,
                    method=resource_method,
                    cache=self.cache,
                    price_model=self.price_model,
                    money_weight=objective.money_weight,
                    time_weight=objective.time_weight,
                    memoize=memoize_within_run,
                    vectorized=vectorized_resource_planning,
                )
            )
        else:
            self.coster = QueryOptimizerCoster(
                model=self.cost_model,
                default_resources=default_resources,
                price_model=self.price_model,
            )

        if planner_kind is PlannerKind.SELINGER:
            self.query_planner = SelingerPlanner(
                self.coster,
                time_weight=objective.time_weight,
                money_weight=objective.money_weight,
                batched=batched_costing,
            )
        else:
            self.query_planner = FastRandomizedPlanner(
                self.coster,
                iterations=randomized_iterations,
                time_weight=objective.time_weight,
                money_weight=objective.money_weight,
                seed=seed,
                batched=batched_costing,
            )

    @classmethod
    def default(cls, catalog: Catalog, **kwargs: Any) -> "RaqoPlanner":
        """A RAQO planner with the paper's defaults (Selinger + hill
        climbing + nearest-neighbour cache on the 100 x 10 GB cluster)."""
        return cls(catalog, **kwargs)

    @classmethod
    def two_step_baseline(
        cls, catalog: Catalog, **kwargs: Any
    ) -> "RaqoPlanner":
        """The current-practice baseline ("QO"): plan first, resources
        later, at a fixed default configuration."""
        kwargs.setdefault("resource_aware", False)
        return cls(catalog, **kwargs)

    def clone(self) -> "RaqoPlanner":
        """An independent planner with the same configuration.

        The clone shares the (immutable, already-fitted) cost model but
        gets its own resource plan cache and coster, so clones can plan
        on separate threads without sharing mutable state. The parallel
        workload runner builds one clone per worker.
        """
        kwargs = dict(self._init_kwargs)
        kwargs["cost_model"] = self.cost_model  # skip any re-fitting
        kwargs["cluster"] = self.cluster  # reflect replan() updates
        return type(self)(self.catalog, **kwargs)

    def with_objective(self, objective: PlanObjective) -> "RaqoPlanner":
        """A clone of this planner planning for a different objective.

        The already-fitted cost model is shared (see :meth:`clone`);
        the serving layer and per-call ``objective=`` overrides on
        :class:`~repro.api.RaqoSession` build planners through here.
        """
        kwargs = dict(self._init_kwargs)
        kwargs["cost_model"] = self.cost_model
        kwargs["cluster"] = self.cluster
        kwargs["objective"] = objective
        return type(self)(self.catalog, **kwargs)

    def picklable_init_kwargs(self) -> Dict[str, Any]:
        """Constructor kwargs rebuilding this planner in another process.

        Mirrors :meth:`clone`, except the tracer is dropped -- it holds
        a lock and cannot cross a process boundary; the process-parallel
        workload runner installs a fresh same-seed child tracer in each
        worker instead. The already-fitted cost model ships along so
        workers never re-train.
        """
        kwargs = dict(self._init_kwargs)
        kwargs["cost_model"] = self.cost_model
        kwargs["cluster"] = self.cluster
        kwargs.pop("tracer", None)
        return kwargs

    def make_context(
        self,
        cluster: Optional[ClusterConditions] = None,
        query: Optional[Query] = None,
    ) -> PlanningContext:
        """A fresh planning context against given cluster conditions.

        When ``query`` carries scan filters (the paper's sampling
        filters), the context's estimator applies them to the base
        statistics before any join arithmetic.
        """
        estimator = self.estimator
        if query is not None and query.filters:
            estimator = estimator.with_filters(query.filter_factors)
        return PlanningContext(
            estimator=estimator,
            cluster=cluster or self.cluster,
            tracer=self.tracer,
        )

    def _traced_plan(
        self, query: Query, context: PlanningContext
    ) -> PlanningResult:
        """Run the query planner inside a ``plan`` span."""
        if not self.tracer.active:
            return self.query_planner.plan(query, context)
        with self.tracer.span("plan", kind="planner") as span:
            span.set_attributes(
                {
                    "query": query.name,
                    "resource_aware": self.resource_aware,
                }
            )
            result = self.query_planner.plan(query, context)
            span.set_attributes(
                {
                    "planner": result.planner_name,
                    "feasible": result.cost.is_finite,
                    "resource_iterations": (
                        result.counters.resource_iterations
                    ),
                    "join_costings": result.counters.join_costings,
                    "memo_hits": result.counters.memo_hits,
                    "cache_hits": result.counters.cache_hits,
                    "cache_misses": result.counters.cache_misses,
                    "wall_ms": result.wall_time_s * 1000.0,
                }
            )
            if result.cost.is_finite:
                span.set_attributes(
                    {
                        "cost_time_s": result.cost.time_s,
                        "cost_money": result.cost.money,
                    }
                )
            return result

    def optimize(
        self,
        query: Query,
        context: Optional[PlanningContext] = None,
    ) -> PlanningResult:
        """Produce a joint query and resource plan for ``query``."""
        if (
            self.cache is not None
            and self.clear_cache_between_queries
            and context is None
        ):
            self.cache.clear()
        if context is None:
            context = self.make_context(query=query)
        result = self._traced_plan(query, context)
        return self._finalize(result, context)

    def replan(
        self, query: Query, cluster: ClusterConditions
    ) -> PlanningResult:
        """Adaptive RAQO: re-optimize under changed cluster conditions.

        With ``clear_cache_between_queries`` (the default) the resource
        plan cache is dropped first: configurations planned for a
        different envelope remain *valid* in a larger one but are no
        longer optimal there. Planners configured for across-query
        caching keep the warm cache and accept that trade-off (the
        paper's Fig 15(b) study).
        """
        self.cluster = cluster
        if self.cache is not None and self.clear_cache_between_queries:
            self.cache.clear()
        context = self.make_context(cluster, query=query)
        result = self._traced_plan(query, context)
        return self._finalize(result, context)

    def _finalize(
        self, result: PlanningResult, context: PlanningContext
    ) -> PlanningResult:
        """Frontier selection for objectives that need it.

        ``fastest`` and ``weighted`` objectives return the search
        result untouched (bit-identical to the historic path);
        ``cheapest``/``latency_bounded``/``pareto`` compute the
        per-stage resource frontier of the chosen plan
        (:func:`~repro.core.pareto.compute_frontier`), pick the
        objective's point, and re-annotate the plan's joins with the
        point's per-stage allocations. The search's own cost survives
        as ``search_cost`` and the frontier pass's counters merge into
        the result's.
        """
        objective = self.objective
        if (
            not objective.needs_frontier
            or not self.resource_aware
            or not result.cost.is_finite
        ):
            return result
        before = dataclasses.replace(context.counters)
        if self.tracer.active:
            with self.tracer.span(
                "pareto-frontier", kind="planner"
            ) as span:
                resource_frontier = compute_frontier(
                    result.plan, context, self.cost_model,
                    self.price_model,
                )
                span.set_attributes(
                    {
                        "objective": str(objective),
                        "frontier_points": len(resource_frontier),
                        "dominated_pruned": (
                            resource_frontier.dominated_pruned
                        ),
                    }
                )
        else:
            resource_frontier = compute_frontier(
                result.plan, context, self.cost_model, self.price_model
            )
        counters = dataclasses.replace(result.counters)
        counters.merge(_counters_delta(before, context.counters))
        selected = objective.select(resource_frontier)
        if selected is None or not resource_frontier.stages:
            # No feasible frontier (or a join-free plan): keep the
            # search's plan and cost; the empty frontier still rides
            # along for observability.
            plan, cost = result.plan, result.cost
        else:
            stage_configs = iter(selected.configs)
            plan = result.plan.map_joins(
                lambda join: join.with_resources(next(stage_configs))
            )
            cost = selected.cost
        return ParetoPlanningResult(
            query=result.query,
            plan=plan,
            cost=cost,
            wall_time_s=result.wall_time_s,
            counters=counters,
            planner_name=result.planner_name,
            batch_sizes=result.batch_sizes,
            frontier=resource_frontier,
            objective=objective,
            selected=selected,
            search_cost=result.cost,
        )
