"""Resource planning: brute force and hill climbing (paper Algorithm 1).

Given a cost function over resource configurations (the learned cost model
evaluated for one operator's data characteristics), pick the configuration
with minimal cost inside the current cluster conditions.

- :func:`brute_force_resource_plan` exhaustively scans the discrete grid
  (Sec VI-B1) -- the baseline whose explored-configuration count Fig 13
  compares against.
- :func:`hill_climb_resource_plan` is a faithful implementation of the
  paper's Algorithm 1: start from the smallest configuration and greedily
  step forward/backward along each resource dimension until no candidate
  step improves the cost.

Both report how many resource configurations they explored (cost-function
evaluations), which is the paper's "#Resource-Iterations" metric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.cluster.cluster import ClusterConditions, ConfigurationGrid
from repro.cluster.containers import ResourceConfiguration

#: A per-operator cost function over resource configurations.
CostFunction = Callable[[ResourceConfiguration], float]

#: A batched cost function over a whole configuration grid; returns one
#: cost per grid row (``inf`` for infeasible configurations).
GridCostFunction = Callable[[ConfigurationGrid], np.ndarray]

#: Candidate steps considered along each dimension (Algorithm 1, line 2).
CANDIDATE_STEPS: Tuple[float, float] = (-1.0, 1.0)


class ResourcePlanningError(Exception):
    """Raised when resource planning cannot produce a configuration."""


@dataclass(frozen=True)
class ResourcePlanOutcome:
    """The result of one resource-planning call."""

    config: ResourceConfiguration
    cost: float
    #: Number of resource configurations whose cost was evaluated.
    iterations: int


def brute_force_resource_plan(
    cost_fn: CostFunction,
    cluster: ClusterConditions,
    vectorized: bool = False,
    grid_cost_fn: Optional[GridCostFunction] = None,
) -> ResourcePlanOutcome:
    """Exhaustively search the discrete resource grid for the cheapest
    configuration.

    Ties break toward fewer containers, then smaller containers, so the
    result is deterministic and favours the cheaper allocation.

    With ``vectorized=True`` the whole grid is costed in one batched call
    and the winner picked by argmin. Because the grid enumerates
    configurations in exactly :meth:`ClusterConditions.iter_configurations`
    order and argmin returns the first occurrence of the minimum, the
    winner (including tie-breaks) is identical to the scalar scan.
    ``grid_cost_fn`` supplies the batched costs (e.g. a cost model's
    ``predict_time_grid``); without it the fast path falls back to
    evaluating ``cost_fn`` per row before the argmin.
    """
    if vectorized:
        return _vectorized_brute_force(cost_fn, cluster, grid_cost_fn)
    best_config: Optional[ResourceConfiguration] = None
    best_cost = math.inf
    iterations = 0
    for config in cluster.iter_configurations():
        iterations += 1
        cost = cost_fn(config)
        if cost < best_cost:
            best_cost = cost
            best_config = config
    if best_config is None:
        raise ResourcePlanningError("cluster offers no configurations")
    return ResourcePlanOutcome(
        config=best_config, cost=best_cost, iterations=iterations
    )


def _vectorized_brute_force(
    cost_fn: CostFunction,
    cluster: ClusterConditions,
    grid_cost_fn: Optional[GridCostFunction],
) -> ResourcePlanOutcome:
    """Batched grid costing + argmin; see brute_force_resource_plan."""
    grid = cluster.config_grid()
    if grid.num_configs == 0:
        raise ResourcePlanningError("cluster offers no configurations")
    if grid_cost_fn is not None:
        costs = np.asarray(grid_cost_fn(grid), dtype=float)
        if costs.shape != (grid.num_configs,):
            raise ResourcePlanningError(
                f"grid cost function returned shape {costs.shape}, "
                f"expected ({grid.num_configs},)"
            )
    else:
        costs = np.fromiter(
            (cost_fn(config) for config in grid.configurations()),
            dtype=float,
            count=grid.num_configs,
        )
    # NaN costs behave like inf in the scalar scan (never strictly less).
    costs = np.where(np.isnan(costs), math.inf, costs)
    best = int(np.argmin(costs))
    best_cost = float(costs[best])
    if not math.isfinite(best_cost):
        raise ResourcePlanningError("cluster offers no configurations")
    return ResourcePlanOutcome(
        config=grid.config_at(best),
        cost=best_cost,
        iterations=grid.num_configs,
    )


def hill_climb_resource_plan(
    cost_fn: CostFunction,
    cluster: ClusterConditions,
    start: Optional[ResourceConfiguration] = None,
    memoize: bool = True,
) -> ResourcePlanOutcome:
    """The paper's Algorithm 1: greedy per-dimension hill climbing.

    ``start`` defaults to the cluster's minimum configuration ("given
    that the users want to minimize the resources used ... start from the
    smallest resource configuration and then climb", Sec VI-B2). Callers
    planning a BHJ should pass a start that already satisfies the
    operator's memory wall, otherwise the climb can be stuck at an
    infinite-cost plateau.

    With ``memoize`` (the default) an evaluation memo makes revisited
    resource vectors free: the climb re-evaluates its current position
    every round and neighbouring rounds overlap, so the memo removes
    30-50% of the cost-function invocations without changing the path.
    ``iterations`` then counts distinct evaluations, which is still the
    paper's "#Resource-Iterations" metric (cost model invocations).

    A visited-set guard terminates the (rare) oscillation the greedy
    combined-step update can produce; the algorithm otherwise follows the
    pseudocode line by line.
    """
    if start is not None and not cluster.contains(start):
        raise ResourcePlanningError(
            f"start {start} lies outside the cluster conditions"
        )
    dims = cluster.dimensions
    steps = cluster.step_sizes  # Algorithm 1 line 1: GetDiscreteSteps
    current: List[float] = list(
        (start or cluster.minimum_configuration).as_vector()
    )
    iterations = 0
    visited: Set[Tuple[float, ...]] = set()
    memo: Dict[Tuple[float, ...], float] = {}

    def evaluate(vector: List[float]) -> float:
        nonlocal iterations
        key = tuple(vector)
        if memoize:
            cached = memo.get(key)
            if cached is not None:
                return cached
        iterations += 1
        value = cost_fn(ResourceConfiguration.from_vector(key))
        if memoize:
            memo[key] = value
        return value

    while True:
        visited.add(tuple(current))
        current_cost = evaluate(current)  # line 5
        best_cost = current_cost  # line 6
        for dim_index in range(len(dims)):  # line 7
            best_candidate = -1  # line 8
            for candidate_index, direction in enumerate(
                CANDIDATE_STEPS
            ):  # line 9
                delta = steps[dim_index] * direction  # line 10
                moved = current[dim_index] + delta
                if (
                    dims[dim_index].minimum
                    <= moved
                    <= dims[dim_index].maximum
                ):  # line 11
                    current[dim_index] = moved  # line 12
                    temp = evaluate(current)  # line 13
                    current[dim_index] -= delta  # line 14
                    if temp < best_cost:  # line 15
                        best_cost = temp  # line 16
                        best_candidate = candidate_index  # line 17
            if best_candidate != -1:  # line 18
                current[dim_index] += (
                    steps[dim_index] * CANDIDATE_STEPS[best_candidate]
                )  # line 19
        if best_cost >= current_cost or tuple(current) in visited:
            # line 20-21: no better neighbour (or an oscillation guard).
            return ResourcePlanOutcome(
                config=ResourceConfiguration.from_vector(tuple(current)),
                cost=best_cost if best_cost < current_cost else current_cost,
                iterations=iterations,
            )


def feasible_bhj_start(
    small_gb: float,
    hash_memory_fraction: float,
    cluster: ClusterConditions,
) -> Optional[ResourceConfiguration]:
    """The smallest configuration whose containers fit a BHJ hash table.

    Returns None when even the largest container cannot hold the
    broadcast relation (the operator is infeasible on this cluster).
    """
    if small_gb < 0:
        raise ResourcePlanningError(
            f"small_gb must be >= 0, got {small_gb}"
        )
    needed_gb = small_gb / hash_memory_fraction
    # Look the memory axis up by name: positional indexing would silently
    # pick the wrong axis if the dimension list is reordered or extended.
    dim = cluster.dimension("container_gb")
    if needed_gb > dim.maximum:
        return None
    # Round the needed size up to the next discrete step.
    if needed_gb <= dim.minimum:
        container_gb = dim.minimum
    else:
        steps_up = math.ceil((needed_gb - dim.minimum) / dim.step - 1e-12)
        container_gb = min(dim.minimum + steps_up * dim.step, dim.maximum)
    return ResourceConfiguration(
        num_containers=cluster.min_containers,
        container_gb=container_gb,
    )
