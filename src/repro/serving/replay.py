"""Traffic replay for the optimizer service: traces in, latency out.

Builds deterministic multi-tenant request traces on the same arrival
machinery the Fig 1 queueing study uses (:mod:`repro.cluster.trace`):
a steady Poisson process for open-loop load, or the duty-cycled bursty
process whose spikes are exactly what admission control exists for.
:func:`replay` drives a running :class:`~repro.serving.service.
OptimizerService` with a trace and reports QPS plus p50/p95/p99
planning latency -- the numbers ``benchmarks/bench_serving.py`` writes
to ``BENCH_serving.json``.

Replays are open-loop: requests are submitted in arrival order (paced
against the trace timeline when ``time_scale`` > 0, as fast as possible
otherwise) and rejected requests are counted, not retried, so an
overloaded service shows up as a rejection rate instead of unbounded
queueing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.catalog import tpch
from repro.catalog.queries import Query
from repro.catalog.schema import Catalog
from repro.cluster.trace import bursty_arrival_times, poisson_arrival_times
from repro.serving.service import (
    OptimizerService,
    Overloaded,
    PlanRequest,
    PlanResponse,
)

__all__ = [
    "ARRIVAL_KINDS",
    "ReplayConfig",
    "ReplayReport",
    "build_requests",
    "replay",
]

#: Supported arrival processes.
ARRIVAL_KINDS = ("poisson", "bursty")


@dataclass(frozen=True)
class ReplayConfig:
    """Shape of one synthetic serving trace.

    The defaults produce a small, CI-friendly trace; the benchmark
    scales ``num_requests`` up.  ``unique_queries`` > 0 swaps the TPC-H
    evaluation queries for a generated random workload of that many
    distinct queries (more cache keys, lower hit rate).
    """

    num_requests: int = 100
    arrival: str = "poisson"
    #: Poisson: mean inter-arrival gap.
    mean_interarrival_s: float = 0.005
    #: Bursty: in-burst gap, between-burst gap, jobs per burst.
    burst_interarrival_s: float = 0.001
    idle_interarrival_s: float = 0.25
    burst_length: int = 25
    num_tenants: int = 4
    unique_queries: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_requests < 1:
            raise ValueError(
                f"num_requests must be >= 1, got {self.num_requests}"
            )
        if self.arrival not in ARRIVAL_KINDS:
            raise ValueError(
                f"arrival must be one of {ARRIVAL_KINDS}, "
                f"got {self.arrival!r}"
            )
        if self.num_tenants < 1:
            raise ValueError(
                f"num_tenants must be >= 1, got {self.num_tenants}"
            )
        if self.unique_queries < 0:
            raise ValueError(
                f"unique_queries must be >= 0, "
                f"got {self.unique_queries}"
            )


def _query_pool(
    config: ReplayConfig, catalog: Optional[Catalog]
) -> List[Query]:
    if config.unique_queries <= 0:
        return list(tpch.EVALUATION_QUERIES)
    from repro.workloads.generator import WorkloadSpec, generate_workload

    if catalog is None:
        catalog = tpch.tpch_catalog(100)
    return generate_workload(
        catalog,
        WorkloadSpec(num_queries=config.unique_queries),
        np.random.default_rng(config.seed + 1),
    )


def build_requests(
    config: ReplayConfig, catalog: Optional[Catalog] = None
) -> Tuple[PlanRequest, ...]:
    """A deterministic request trace: pure function of the config.

    Arrival times come from the configured process, tenants and queries
    from independent draws of the seeded generator; the same config
    always yields byte-identical traces (the determinism property tests
    replay one trace at several worker counts and diff the outputs).
    """
    rng = np.random.default_rng(config.seed)
    if config.arrival == "poisson":
        arrivals = poisson_arrival_times(
            config.num_requests, config.mean_interarrival_s, rng
        )
    else:
        arrivals = bursty_arrival_times(
            config.num_requests,
            config.burst_interarrival_s,
            config.idle_interarrival_s,
            config.burst_length,
            rng,
        )
    pool = _query_pool(config, catalog)
    query_picks = rng.integers(0, len(pool), size=config.num_requests)
    tenant_picks = rng.integers(
        0, config.num_tenants, size=config.num_requests
    )
    return tuple(
        PlanRequest(
            request_id=index,
            query=pool[int(query_picks[index])],
            tenant=f"tenant-{int(tenant_picks[index])}",
            arrival_s=float(arrivals[index]),
        )
        for index in range(config.num_requests)
    )


def _quantiles_ms(values: Sequence[float]) -> Dict[str, float]:
    """Exact nearest-rank latency quantiles (NaN-free, JSON-ready)."""
    if not values:
        return {
            "p50": 0.0,
            "p95": 0.0,
            "p99": 0.0,
            "mean": 0.0,
            "max": 0.0,
        }
    ordered = sorted(values)

    def rank(q: float) -> float:
        index = min(
            len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1)
        )
        return ordered[index]

    return {
        "p50": rank(0.50),
        "p95": rank(0.95),
        "p99": rank(0.99),
        "mean": sum(ordered) / len(ordered),
        "max": ordered[-1],
    }


@dataclass(frozen=True)
class ReplayReport:
    """What one trace replay measured."""

    label: str
    requests: int
    completed: int
    rejected: int
    cache_hits: int
    coalesced: int
    elapsed_s: float
    #: Completed requests per second of wall-clock replay time.
    qps: float
    #: End-to-end (admission -> response) latency quantiles, ms.
    latency_ms: Dict[str, float]
    #: Queue-wait latency quantiles, ms.
    queue_ms: Dict[str, float]
    #: The service cache's counter snapshot (empty when cache is off).
    cache: Dict[str, object]
    responses: Tuple[PlanResponse, ...]
    #: Per-tenant accounting, one dict per tenant, sorted by tenant
    #: name: completed/rejected/cache_hits/coalesced counts plus
    #: latency quantiles over that tenant's completed requests.
    tenants: Tuple[Dict[str, object], ...] = ()

    def to_json_dict(self) -> Dict[str, object]:
        """The JSON payload ``BENCH_serving.json`` embeds per trace."""
        return {
            "label": self.label,
            "requests": self.requests,
            "completed": self.completed,
            "rejected": self.rejected,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "elapsed_s": self.elapsed_s,
            "qps": self.qps,
            "latency_ms": dict(self.latency_ms),
            "queue_ms": dict(self.queue_ms),
            "cache": dict(self.cache),
            "tenants": [dict(row) for row in self.tenants],
        }


def _tenant_rows(
    responses: Sequence[PlanResponse],
    rejected_by_tenant: Dict[str, int],
) -> Tuple[Dict[str, object], ...]:
    """Per-tenant replay accounting, sorted by tenant name.

    A tenant appears if it completed *or* was rejected -- a tenant
    whose every request bounced off admission control still shows up,
    with zero completions and its rejection count.
    """
    by_tenant: Dict[str, List[PlanResponse]] = {}
    for response in responses:
        by_tenant.setdefault(response.request.tenant, []).append(
            response
        )
    tenants = sorted(set(by_tenant) | set(rejected_by_tenant))
    rows: List[Dict[str, object]] = []
    for tenant in tenants:
        served = by_tenant.get(tenant, [])
        rows.append(
            {
                "tenant": tenant,
                "completed": len(served),
                "rejected": rejected_by_tenant.get(tenant, 0),
                "cache_hits": sum(1 for r in served if r.cache_hit),
                "coalesced": sum(1 for r in served if r.coalesced),
                "latency_ms": _quantiles_ms(
                    [r.latency_ms for r in served]
                ),
            }
        )
    return tuple(rows)


def replay(
    service: OptimizerService,
    requests: Sequence[PlanRequest],
    *,
    label: str = "replay",
    time_scale: float = 0.0,
) -> ReplayReport:
    """Drive a started service with a request trace; measure it.

    ``time_scale`` stretches the trace timeline onto the wall clock
    (1.0 = real time, 0.5 = twice as fast); 0 disables pacing and
    submits the whole trace as fast as admission control allows, which
    is how the benchmark measures peak sustainable throughput.
    """
    import time

    if time_scale < 0:
        raise ValueError(f"time_scale must be >= 0, got {time_scale}")
    futures = []
    rejected = 0
    rejected_by_tenant: Dict[str, int] = {}
    started = time.perf_counter()
    for request in requests:
        if time_scale > 0:
            target = started + request.arrival_s * time_scale
            delay = target - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
        try:
            futures.append(service.submit(request))
        except Overloaded:
            rejected += 1
            rejected_by_tenant[request.tenant] = (
                rejected_by_tenant.get(request.tenant, 0) + 1
            )
    responses = tuple(future.result() for future in futures)
    elapsed = time.perf_counter() - started
    latencies = [response.latency_ms for response in responses]
    queue_waits = [response.queue_ms for response in responses]
    return ReplayReport(
        label=label,
        requests=len(requests),
        completed=len(responses),
        rejected=rejected,
        cache_hits=sum(1 for r in responses if r.cache_hit),
        coalesced=sum(1 for r in responses if r.coalesced),
        elapsed_s=elapsed,
        qps=(len(responses) / elapsed) if elapsed > 0 else 0.0,
        latency_ms=_quantiles_ms(latencies),
        queue_ms=_quantiles_ms(queue_waits),
        cache=(
            service.cache.snapshot()
            if service.cache is not None
            else {}
        ),
        responses=responses,
        tenants=_tenant_rows(responses, rejected_by_tenant),
    )
