"""The multi-tenant optimizer service: planning-as-a-service.

The paper's setting is a shared cloud where the optimizer is a
long-lived *service* fielding concurrent planning requests, not a
library call.  :class:`OptimizerService` wraps one
:class:`~repro.api.RaqoSession` behind a bounded admission queue and a
pool of worker threads, each planning on its own
:meth:`~repro.core.raqo.RaqoPlanner.clone` (no shared mutable planner
state), with three serving-grade behaviours layered on top:

- **Request batching.**  Workers drain up to ``max_batch`` queued
  requests at once and coalesce duplicates, so a burst of identical
  requests costs one optimizer run; each planned query then flows
  through the lattice-batched ``RaqoCoster.cost_batch`` kernel (the
  service refuses planners with batched costing disabled only in
  spirit -- it simply inherits the session's planner configuration,
  whose default *is* batched).
- **Sharded cross-tenant caching.**  Finished plans land in a
  :class:`~repro.serving.cache.ShardedPlanCache`; repeats -- from any
  tenant -- are served without planning.  A single-flight registry
  guarantees each cache key is planned at most once per residency, even
  when many workers miss simultaneously.
- **Admission control and backpressure.**  The queue is bounded;
  :meth:`submit` on a full queue raises a typed :class:`Overloaded`
  synchronously, and the rejected request is never partially planned.
  ``max_inflight`` independently caps concurrent optimizer runs.

Determinism: with the cache warm-path sized so nothing is evicted (and
no requests rejected), a given seed and request trace produce identical
plans and a byte-identical canonical span tree at any worker count --
request spans are keyed by request id and plan spans by cache key, both
parented explicitly on the service root span, exactly the discipline
:mod:`repro.workloads.runner` uses for parallel workloads.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field
from queue import Empty, Full, Queue
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.catalog.queries import Query
from repro.core.pareto import PlanObjective
from repro.core.raqo import RaqoPlanner
from repro.obs.slo import SloPolicy, SloTracker
from repro.obs.tracing import SpanHandle, Tracer
from repro.planner.cost_interface import PlanningResult
from repro.serving.cache import ShardedPlanCache

if TYPE_CHECKING:
    from repro.api import QueryLike, RaqoSession

__all__ = [
    "OptimizerService",
    "Overloaded",
    "PlanRequest",
    "PlanResponse",
    "ServiceConfig",
]


class Overloaded(RuntimeError):
    """Typed backpressure signal: the admission queue is full.

    Raised synchronously by :meth:`OptimizerService.submit`; the
    rejected request was never admitted, so no planning work -- partial
    or otherwise -- happens on its behalf.
    """

    def __init__(self, queue_depth: int, max_queue: int) -> None:
        super().__init__(
            f"optimizer service overloaded: admission queue at "
            f"{queue_depth}/{max_queue}"
        )
        self.queue_depth = queue_depth
        self.max_queue = max_queue


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs for one :class:`OptimizerService`.

    ``max_inflight`` of 0 means "same as ``workers``" (the pool itself
    is then the only concurrency bound).
    """

    workers: int = 2
    max_queue: int = 128
    max_inflight: int = 0
    max_batch: int = 8
    cache_enabled: bool = True
    cache_shards: int = 8
    cache_shard_capacity: int = 64
    label: str = "serving"
    #: Plan for this :class:`~repro.core.pareto.PlanObjective` instead
    #: of the session's.  The objective is part of the cache-key
    #: fingerprint, so services (tenants) with different objectives
    #: never share a cached plan.
    objective: Optional[PlanObjective] = None
    #: Per-tenant latency SLO to track (burn-rate alerts land in the
    #: session's event log); ``None`` disables SLO accounting.
    slo: Optional[SloPolicy] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.max_queue < 1:
            raise ValueError(
                f"max_queue must be >= 1, got {self.max_queue}"
            )
        if self.max_inflight < 0:
            raise ValueError(
                f"max_inflight must be >= 0, got {self.max_inflight}"
            )
        if self.max_batch < 1:
            raise ValueError(
                f"max_batch must be >= 1, got {self.max_batch}"
            )

    @property
    def effective_max_inflight(self) -> int:
        """The concurrent-planning cap actually enforced."""
        return self.max_inflight or self.workers


@dataclass(frozen=True)
class PlanRequest:
    """One tenant's planning request.

    ``arrival_s`` is the request's position on the trace timeline (used
    by the replay harness for pacing); it does not affect planning.
    """

    request_id: int
    query: "QueryLike"
    tenant: str = "default"
    arrival_s: float = 0.0


@dataclass(frozen=True)
class PlanResponse:
    """The service's answer: the plan plus serving metadata."""

    request: PlanRequest
    result: PlanningResult
    #: True when the plan came out of the cross-tenant cache.
    cache_hit: bool
    #: True when this request piggybacked on another request's
    #: optimizer run (batch dedup or single-flight coalescing).
    coalesced: bool
    #: Size of the drained batch this request was served from.
    batch_size: int
    #: Wall-clock time from admission to response.
    latency_ms: float
    #: Wall-clock time spent queued before a worker picked it up.
    queue_ms: float


@dataclass
class _Ticket:
    """A queued request plus its completion future and timestamps."""

    request: PlanRequest
    query: Query
    key: str
    future: "Future[PlanResponse]"
    enqueued_at: float
    dequeued_at: float = 0.0
    batch_size: int = 0
    coalesced: bool = False


@dataclass
class _Inflight:
    """Single-flight registry entry: the owner plans, waiters attach."""

    waiters: List[_Ticket] = field(default_factory=list)


#: Worker shutdown sentinel (one per worker, enqueued by ``stop``).
_SENTINEL: object = object()


class OptimizerService:
    """A long-lived, concurrent planning frontend over one session.

    Construction wires the cache's counters onto the session's
    :class:`~repro.obs.metrics.MetricsRegistry`; requests may be
    submitted before :meth:`start` (they queue up -- and overflow the
    admission bound -- exactly as they would against a stalled worker
    pool), but nothing is planned until the workers run.  Use as a
    context manager for start/stop symmetry::

        service = session.serve(workers=4)
        with service:
            response = service.plan("Q3", tenant="analytics")
    """

    def __init__(
        self,
        session: "RaqoSession",
        config: Optional[ServiceConfig] = None,
    ) -> None:
        self.session = session
        self.config = config if config is not None else ServiceConfig()
        self.metrics = session.metrics
        #: The session's telemetry plane: the service lands per-tenant
        #: windowed series, admission/rejection/coalesce events, and
        #: SLO burn alerts on it.
        self.telemetry = session.telemetry
        self.slo: Optional[SloTracker] = (
            self.telemetry.slo_tracker(self.config.slo)
            if self.config.slo is not None
            else None
        )
        self.cache: Optional[ShardedPlanCache] = (
            ShardedPlanCache(
                shards=self.config.cache_shards,
                shard_capacity=self.config.cache_shard_capacity,
                metrics=session.metrics,
                events=self.telemetry.events,
                now=self.telemetry.wall_now,
            )
            if self.config.cache_enabled
            else None
        )
        self._queue: "Queue[object]" = Queue(
            maxsize=self.config.max_queue
        )
        self._lock = threading.Lock()
        self._inflight: Dict[str, _Inflight] = {}
        self._plan_epochs: Dict[str, int] = {}
        self._planning_now = 0
        self._planning_high_water = 0
        self._inflight_sem = threading.Semaphore(
            self.config.effective_max_inflight
        )
        self._request_ids = itertools.count()
        self._threads: List[threading.Thread] = []
        self._started = False
        self._stopped = False
        self._root_span: Optional[SpanHandle] = None
        #: Workers plan on clones of this template -- the session
        #: planner, re-targeted when the service declares its own
        #: objective.
        self._planner_template: RaqoPlanner = (
            session.planner
            if self.config.objective is None
            else session.planner.with_objective(self.config.objective)
        )
        self._config_fingerprint = self._fingerprint()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "OptimizerService":
        """Spin up the worker pool (idempotent until :meth:`stop`)."""
        if self._stopped:
            raise RuntimeError("service already stopped")
        if self._started:
            return self
        self._started = True
        tracer = self._tracer
        if tracer.active:
            self._root_span = tracer.span(
                "serving", kind="planner", key=self.config.label
            )
            self._root_span.__enter__()
            # Pool sizing is a deployment knob, not part of the
            # deterministic trace: wall_-prefixed attributes show up in
            # Chrome traces but not in the canonical span tree, which
            # must be byte-identical across worker counts.
            self._root_span.set_attributes(
                {
                    "label": self.config.label,
                    "cache_enabled": self.config.cache_enabled,
                    "wall_workers": self.config.workers,
                    "wall_max_inflight": (
                        self.config.effective_max_inflight
                    ),
                }
            )
        for index in range(self.config.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"raqo-serving-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self) -> None:
        """Drain queued requests, stop the workers, close the trace."""
        with self._lock:
            # Same lock as submit(): once ``_stopped`` is visible here,
            # no new ticket can enter the queue, so everything below
            # the sentinels is already enqueued.
            if self._stopped:
                return
            self._stopped = True
        if self._started:
            for _ in self._threads:
                # Sentinels land behind every queued request (FIFO), so
                # the pool drains the backlog before shutting down.
                self._queue.put(_SENTINEL)
            for thread in self._threads:
                thread.join()
        else:
            # Never started: no pool will ever drain the backlog, so
            # fail every queued ticket's future instead of leaving its
            # caller blocked forever.
            while True:
                try:
                    item = self._queue.get_nowait()
                except Empty:
                    break
                assert isinstance(item, _Ticket)
                item.future.set_exception(
                    RuntimeError(
                        "optimizer service stopped before start"
                    )
                )
        if self._root_span is not None:
            # Rejection counts depend on wall-clock queue pressure, so
            # they also stay out of the canonical tree.
            self._root_span.set_attributes(
                {
                    "wall_completed": self.metrics.counter(
                        "serving.completed"
                    ).value,
                    "wall_rejected": self.metrics.counter(
                        "serving.rejected"
                    ).value,
                }
            )
            self._root_span.__exit__(None, None, None)
            self._root_span = None

    def __enter__(self) -> "OptimizerService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- submission --------------------------------------------------------

    def submit(self, request: PlanRequest) -> "Future[PlanResponse]":
        """Admit one request; returns its completion future.

        Raises :class:`Overloaded` synchronously when the admission
        queue is full -- backpressure, not buffering -- and ``KeyError``
        for unknown query names (also before admission, so malformed
        requests never consume queue space).
        """
        query = self.session.resolve_query(request.query)
        ticket = _Ticket(
            request=request,
            query=query,
            key=self.cache_key(query),
            future=Future(),
            enqueued_at=time.perf_counter(),
        )
        # The stopped check and the enqueue are one atomic step:
        # stop() flips ``_stopped`` under the same lock before it
        # enqueues the shutdown sentinels, so a ticket can never land
        # behind the sentinels (where no worker would ever complete
        # its future and the caller would hang).
        with self._lock:
            if self._stopped:
                raise RuntimeError("service already stopped")
            try:
                self._queue.put_nowait(ticket)
            except Full:
                self.metrics.counter("serving.rejected").inc()
                now = self.telemetry.wall_now()
                self.telemetry.windowed_counter(
                    "serving.tenant.rejected",
                    [("tenant", request.tenant)],
                ).inc(ts_s=now)
                self.telemetry.events.emit(
                    "rejection",
                    now,
                    tenant=request.tenant,
                    attributes={
                        "request_id": request.request_id,
                        "queue_depth": self._queue.qsize(),
                        "max_queue": self.config.max_queue,
                    },
                )
                raise Overloaded(
                    queue_depth=self._queue.qsize(),
                    max_queue=self.config.max_queue,
                ) from None
        self.metrics.counter("serving.admitted").inc()
        self.telemetry.windowed_counter(
            "serving.tenant.admitted", [("tenant", request.tenant)]
        ).inc(ts_s=self.telemetry.wall_now())
        self.telemetry.events.emit(
            "admission",
            self.telemetry.wall_now(),
            tenant=request.tenant,
            attributes={"request_id": request.request_id},
        )
        return ticket.future

    def plan(
        self, query: "QueryLike", tenant: str = "default"
    ) -> PlanResponse:
        """Blocking convenience wrapper: submit one request, wait."""
        request = PlanRequest(
            request_id=next(self._request_ids),
            query=query,
            tenant=tenant,
        )
        return self.submit(request).result()

    async def plan_async(self, request: PlanRequest) -> PlanResponse:
        """The asyncio frontend: await one request's response."""
        return await asyncio.wrap_future(self.submit(request))

    # -- observability -----------------------------------------------------

    @property
    def planning_high_water(self) -> int:
        """Peak concurrent optimizer runs observed so far."""
        with self._lock:
            return self._planning_high_water

    def exposition(self) -> str:
        """The session's current Prometheus text exposition.

        What a scrape of ``repro serve --metrics-addr`` returns:
        lifetime registry instruments plus the telemetry plane's
        windowed series, per-tenant SLO burn rates, and drift state.
        """
        return self.session.exposition()

    def cache_key(self, query: Query) -> str:
        """The cross-tenant cache key: query structure + planner config.

        The key binds the query's *structure* (tables and scan filters,
        via a stable content hash), not just its name: names collide
        easily across tenants -- every generated workload calls its
        queries ``q000..qNNN`` -- and a name-only key would silently
        serve one tenant's plan for another tenant's different query.

        Deliberately excludes the tenant -- a plan depends on what is
        asked and how the session plans, never on who asks; that is what
        makes the cache *cross*-tenant.
        """
        return (
            f"{query.name}"
            f"|{self._query_fingerprint(query)}"
            f"|{self._config_fingerprint}"
        )

    @staticmethod
    def _query_fingerprint(query: Query) -> str:
        """A stable hash of what the optimizer actually sees.

        ``Query`` normalizes its filters (sorted tuple) at construction,
        so structurally equal queries fingerprint identically; blake2s
        (unlike salted ``hash()``) is stable across processes, keeping
        cache keys -- and the span paths derived from them -- a pure
        function of the trace.
        """
        payload = repr((query.tables, query.filters)).encode("utf-8")
        return hashlib.blake2s(payload, digest_size=8).hexdigest()

    def _fingerprint(self) -> str:
        planner = self._planner_template
        cluster = planner.cluster
        return (
            f"{planner.query_planner.__class__.__name__}"
            f"|{planner.resource_aware:d}"
            f"|{cluster.max_containers}x{cluster.max_container_gb}"
            f"|{planner.objective.fingerprint()}"
        )

    @property
    def _tracer(self) -> Tracer:
        return self.session.tracer

    # -- the worker pool ---------------------------------------------------

    def _worker_loop(self) -> None:
        planner = self._planner_template.clone()
        while True:
            head = self._queue.get()
            if head is _SENTINEL:
                return
            assert isinstance(head, _Ticket)
            batch = [head]
            while len(batch) < self.config.max_batch:
                try:
                    item = self._queue.get_nowait()
                except Empty:
                    break
                if item is _SENTINEL:
                    # Not ours to consume mid-batch: hand the shutdown
                    # signal back for whichever worker drains next.
                    self._queue.put(item)
                    break
                assert isinstance(item, _Ticket)
                batch.append(item)
            self._handle_batch(planner, batch)

    def _handle_batch(
        self, planner: RaqoPlanner, batch: List[_Ticket]
    ) -> None:
        """Serve one drained batch: dedup by key, then plan or hit."""
        now = time.perf_counter()
        for ticket in batch:
            ticket.dequeued_at = now
            ticket.batch_size = len(batch)
        self.metrics.histogram("serving.batch_size").observe(
            float(len(batch))
        )
        groups: "OrderedDict[str, List[_Ticket]]" = OrderedDict()
        for ticket in batch:
            groups.setdefault(ticket.key, []).append(ticket)
        for key, tickets in groups.items():
            # Within-batch duplicates ride the first ticket's run.
            extras = tickets[1:]
            for extra in extras:
                extra.coalesced = True
            if extras:
                self.metrics.counter("serving.coalesced").inc(
                    len(extras)
                )
                self._emit_coalesce(key, extras, kind="batch")
            self._serve_group(planner, key, tickets)

    def _emit_coalesce(
        self, key: str, tickets: Sequence[_Ticket], kind: str
    ) -> None:
        """One ``coalesce`` event per piggybacked group of requests."""
        self.telemetry.events.emit(
            "coalesce",
            self.telemetry.wall_now(),
            tenant=tickets[0].request.tenant,
            attributes={
                "cache_key": key,
                "kind": kind,
                "count": len(tickets),
            },
        )

    def _serve_group(
        self, planner: RaqoPlanner, key: str, tickets: List[_Ticket]
    ) -> None:
        cached = (
            self.cache.lookup(key) if self.cache is not None else None
        )
        if cached is not None:
            assert isinstance(cached, PlanningResult)
            self._respond(tickets, cached, cache_hit=True)
            return
        with self._lock:
            entry = self._inflight.get(key)
            if entry is not None:
                # Another worker is already planning this key: attach.
                # Count only tickets not already counted as within-batch
                # duplicates, so ``serving.coalesced`` equals exactly
                # the number of responses with ``coalesced=True``.
                newly = [
                    ticket for ticket in tickets if not ticket.coalesced
                ]
                for ticket in tickets:
                    ticket.coalesced = True
                entry.waiters.extend(tickets)
                if newly:
                    self.metrics.counter("serving.coalesced").inc(
                        len(newly)
                    )
                    self._emit_coalesce(key, newly, kind="inflight")
                return
            # Double-check under the lock: the owner that just finished
            # inserts into the cache *before* deregistering, so a miss
            # recorded above may already be serveable here.  peek() keeps
            # the hit/miss accounting at exactly one count per lookup.
            late = (
                self.cache.peek(key) if self.cache is not None else None
            )
            if late is not None:
                assert isinstance(late, PlanningResult)
                self._respond(tickets, late, cache_hit=True)
                return
            self._inflight[key] = _Inflight(waiters=list(tickets))
        self._plan_key(planner, key, tickets[0])

    def _plan_key(
        self, planner: RaqoPlanner, key: str, ticket: _Ticket
    ) -> None:
        """Run the optimizer once for ``key`` and fan the result out."""
        with self._inflight_sem:
            with self._lock:
                self._planning_now += 1
                self._planning_high_water = max(
                    self._planning_high_water, self._planning_now
                )
                epoch = self._plan_epochs.get(key, 0)
                self._plan_epochs[key] = epoch + 1
            try:
                result = self._optimize(planner, key, epoch, ticket)
            except BaseException as exc:
                with self._lock:
                    self._planning_now -= 1
                    entry = self._inflight.pop(key)
                for waiter in entry.waiters:
                    waiter.future.set_exception(exc)
                self.metrics.counter("serving.errors").inc(
                    len(entry.waiters)
                )
                return
            with self._lock:
                self._planning_now -= 1
        if self.cache is not None:
            # Insert before deregistering: between the two, late misses
            # either see the cache entry or the in-flight entry, so a
            # key is never planned twice while it stays resident.
            self.cache.insert(key, result)
        with self._lock:
            entry = self._inflight.pop(key)
        self.session._record_planning(result)
        self._respond(entry.waiters, result, cache_hit=False)

    def _optimize(
        self, planner: RaqoPlanner, key: str, epoch: int, ticket: _Ticket
    ) -> PlanningResult:
        """One traced optimizer run, keyed deterministically.

        The span path depends on the cache key and its planning epoch
        (0 unless the key was evicted and re-planned), never on which
        worker ran it, so same-trace runs at different worker counts
        serialize to byte-identical canonical span trees.
        """
        tracer = self._tracer
        if not tracer.active:
            return planner.optimize(ticket.query)
        with tracer.span(
            "plan_once",
            kind="planner",
            parent=self._root_span,
            key=f"{key}#{epoch}",
        ) as span:
            span.set_attributes(
                {"cache_key": key, "query": ticket.query.name}
            )
            return planner.optimize(ticket.query)

    def _respond(
        self,
        tickets: Sequence[_Ticket],
        result: PlanningResult,
        *,
        cache_hit: bool,
    ) -> None:
        done = time.perf_counter()
        now = self.telemetry.wall_now()
        tracer = self._tracer
        for ticket in tickets:
            latency_ms = (done - ticket.enqueued_at) * 1000.0
            queue_ms = (
                (ticket.dequeued_at - ticket.enqueued_at) * 1000.0
                if ticket.dequeued_at
                else 0.0
            )
            if tracer.active:
                self._emit_request_span(
                    ticket, cache_hit, latency_ms, queue_ms
                )
            self.metrics.histogram("serving.latency_ms").observe(
                latency_ms
            )
            self.metrics.histogram("serving.queue_ms").observe(queue_ms)
            self.metrics.counter("serving.completed").inc()
            tenant = ticket.request.tenant
            tenant_labels = [("tenant", tenant)]
            self.telemetry.windowed_histogram(
                "serving.tenant.latency_ms", tenant_labels
            ).observe(latency_ms, ts_s=now)
            self.telemetry.windowed_counter(
                "serving.tenant.completed", tenant_labels
            ).inc(ts_s=now)
            if cache_hit:
                self.telemetry.windowed_counter(
                    "serving.tenant.cache_hits", tenant_labels
                ).inc(ts_s=now)
            if self.slo is not None:
                self.slo.record(tenant, latency_ms, ts_s=now)
            ticket.future.set_result(
                PlanResponse(
                    request=ticket.request,
                    result=result,
                    cache_hit=cache_hit,
                    coalesced=ticket.coalesced,
                    batch_size=ticket.batch_size,
                    latency_ms=latency_ms,
                    queue_ms=queue_ms,
                )
            )

    def _emit_request_span(
        self,
        ticket: _Ticket,
        cache_hit: bool,
        latency_ms: float,
        queue_ms: float,
    ) -> None:
        """One span per served request, keyed by request id.

        Scheduling-dependent facts (hit vs coalesced, latency, batch
        size) ride on ``wall_``-prefixed attributes, which the canonical
        span tree excludes -- the tree stays identical across worker
        counts while the Chrome trace still shows the full story.
        """
        with self._tracer.span(
            "request",
            kind="planner",
            parent=self._root_span,
            key=str(ticket.request.request_id),
        ) as span:
            span.set_attributes(
                {
                    "request_id": ticket.request.request_id,
                    "tenant": ticket.request.tenant,
                    "query": ticket.query.name,
                    "wall_cache_hit": cache_hit,
                    "wall_coalesced": ticket.coalesced,
                    "wall_batch_size": ticket.batch_size,
                    "wall_latency_ms": latency_ms,
                    "wall_queue_ms": queue_ms,
                }
            )
