"""Planning-as-a-service: the multi-tenant optimizer serving layer.

The paper argues query and resource optimization belong together
*inside the shared cloud*, where the optimizer is a long-lived service
fielding concurrent requests from many tenants -- not a library call.
This package is that serving layer over the reproduction's
:class:`~repro.api.RaqoSession`:

- :mod:`repro.serving.service` -- the :class:`OptimizerService`
  frontend: bounded admission queue with a typed :class:`Overloaded`
  backpressure error, worker pool over planner clones, request
  batching with single-flight coalescing, deterministic tracing.
- :mod:`repro.serving.cache` -- the :class:`ShardedPlanCache`:
  lock-striped, cross-tenant, LRU-evicting, with exactly reconciling
  hit/miss/insert/eviction counters on the session metrics registry.
- :mod:`repro.serving.replay` -- deterministic Poisson/bursty traffic
  traces and the :func:`replay` harness reporting QPS and p50/p95/p99
  planning latency (the ``BENCH_serving.json`` numbers).

See ``docs/serving.md`` for the architecture and the determinism
guarantee.
"""

from repro.serving.cache import ShardedPlanCache
from repro.serving.replay import (
    ARRIVAL_KINDS,
    ReplayConfig,
    ReplayReport,
    build_requests,
    replay,
)
from repro.serving.service import (
    OptimizerService,
    Overloaded,
    PlanRequest,
    PlanResponse,
    ServiceConfig,
)

__all__ = [
    "ARRIVAL_KINDS",
    "OptimizerService",
    "Overloaded",
    "PlanRequest",
    "PlanResponse",
    "ReplayConfig",
    "ReplayReport",
    "ServiceConfig",
    "ShardedPlanCache",
    "build_requests",
    "replay",
]
