"""A sharded, lock-striped, LRU plan cache for the optimizer service.

One optimizer service fields planning requests from many tenants at
once; repeats are common (dashboards, retried jobs, fleet-wide
templates), so finished :class:`~repro.planner.cost_interface.
PlanningResult` objects are cached *across tenants* -- a plan depends
only on the query and the session's planner configuration, never on who
asked.  To keep the cache off the serving hot path's critical section,
entries are spread over independently locked shards: a request for one
key only ever contends with requests whose keys hash to the same shard.

Shard selection is a stable SHA-256 prefix of the key (``hash()`` on
strings is salted per process and would break cross-run determinism),
each shard runs LRU eviction against a per-shard capacity knob, and all
traffic counters (hits, misses, inserts, evictions, live entries) land
on a :class:`~repro.obs.metrics.MetricsRegistry` -- the serving session
shares its own registry so cache behaviour shows up directly in
:meth:`RaqoSession.metrics_snapshot`.

The counters reconcile exactly, even under concurrent hammering:

- every :meth:`lookup` increments exactly one of hits or misses;
- ``entries`` (a gauge, maintained with +1/-1 deltas under the shard
  lock) always equals ``inserts - evictions`` and ``len(cache)``.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, TypeVar

from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import AttrValue

__all__ = [
    "ShardedPlanCache",
]

V = TypeVar("V")


class _Shard:
    """One independently locked LRU segment of the cache."""

    __slots__ = ("lock", "entries")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.entries: "OrderedDict[str, object]" = OrderedDict()


class ShardedPlanCache:
    """A cross-tenant LRU plan cache striped over ``shards`` locks.

    ``shard_capacity`` bounds each shard independently (total capacity
    is ``shards * shard_capacity``); when a shard overflows, its least
    recently used entry is evicted.  ``metrics`` receives the traffic
    counters under ``<prefix>.hits`` / ``.misses`` / ``.inserts`` /
    ``.evictions`` and the live-entry gauge ``<prefix>.entries``.
    """

    def __init__(
        self,
        *,
        shards: int = 8,
        shard_capacity: int = 64,
        metrics: Optional[MetricsRegistry] = None,
        prefix: str = "serving.cache",
        events: Optional[EventLog] = None,
        now: Optional[Callable[[], float]] = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if shard_capacity < 1:
            raise ValueError(
                f"shard_capacity must be >= 1, got {shard_capacity}"
            )
        self.shard_capacity = shard_capacity
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Evictions additionally land as ``cache_evict`` events here
        #: (timestamped by ``now``, the plane's wall clock when the
        #: service wires it).
        self.events = events
        self._now = now if now is not None else time.perf_counter
        self._shards: List[_Shard] = [_Shard() for _ in range(shards)]
        self._hits = self.metrics.counter(f"{prefix}.hits")
        self._misses = self.metrics.counter(f"{prefix}.misses")
        self._inserts = self.metrics.counter(f"{prefix}.inserts")
        self._evictions = self.metrics.counter(f"{prefix}.evictions")
        self._entries = self.metrics.gauge(f"{prefix}.entries")

    # -- shard routing -----------------------------------------------------

    @property
    def shards(self) -> int:
        """Number of independently locked shards."""
        return len(self._shards)

    def shard_index(self, key: str) -> int:
        """The deterministic shard a key routes to.

        A SHA-256 prefix, not ``hash()``: string hashing is salted per
        process, and shard routing must be identical across runs and
        worker processes for determinism tests to mean anything.
        """
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") % len(self._shards)

    def _shard(self, key: str) -> _Shard:
        return self._shards[self.shard_index(key)]

    # -- traffic -----------------------------------------------------------

    def lookup(self, key: str) -> Optional[object]:
        """The cached value for ``key`` (refreshing its LRU position),
        or ``None``; counts exactly one hit or miss."""
        shard = self._shard(key)
        with shard.lock:
            value = shard.entries.get(key)
            if value is not None:
                shard.entries.move_to_end(key)
        if value is None:
            self._misses.inc()
            return None
        self._hits.inc()
        return value

    def peek(self, key: str) -> Optional[object]:
        """Like :meth:`lookup` but silent: no counters, no LRU refresh.

        The service's single-flight double-check uses this so the
        re-check under the service lock never distorts hit/miss
        accounting (each request records exactly one of the two).
        """
        shard = self._shard(key)
        with shard.lock:
            return shard.entries.get(key)

    def insert(self, key: str, value: object) -> bool:
        """Insert (or refresh) ``key``; returns True for new entries.

        A new key that overflows its shard evicts that shard's least
        recently used entry first, so ``entries`` never exceeds
        ``shards * shard_capacity``.
        """
        if value is None:
            raise ValueError("cannot cache None (it encodes a miss)")
        shard = self._shard(key)
        evicted = 0
        with shard.lock:
            if key in shard.entries:
                shard.entries[key] = value
                shard.entries.move_to_end(key)
                fresh = False
            else:
                while len(shard.entries) >= self.shard_capacity:
                    shard.entries.popitem(last=False)
                    evicted += 1
                shard.entries[key] = value
                fresh = True
        if fresh:
            self._inserts.inc()
            self._entries.add(1.0 - evicted)
            if evicted:
                self._evictions.inc(evicted)
                self._emit_evict(evicted, "capacity", key)
        return fresh

    def clear(self) -> None:
        """Drop every entry (counts each as an eviction)."""
        dropped = 0
        for shard in self._shards:
            with shard.lock:
                dropped += len(shard.entries)
                shard.entries.clear()
        if dropped:
            self._evictions.inc(dropped)
            self._entries.add(-float(dropped))
            self._emit_evict(dropped, "clear", "")

    def _emit_evict(self, count: int, reason: str, key: str) -> None:
        if self.events is None:
            return
        attributes: Dict[str, AttrValue] = {
            "count": count,
            "reason": reason,
        }
        if key:
            # The key whose insert forced the eviction, not the victim:
            # enough to find the hot shard without dumping plan keys.
            attributes["inserted_key"] = key
        self.events.emit("cache_evict", self._now(), attributes=attributes)

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return sum(
            len(shard.entries) for shard in self._shards
        )

    def __contains__(self, key: str) -> bool:
        return self.peek(key) is not None

    @property
    def hit_rate(self) -> float:
        """hits / (hits + misses), or 0.0 before any traffic."""
        lookups = self._hits.value + self._misses.value
        if lookups == 0:
            return 0.0
        return self._hits.value / lookups

    def snapshot(self) -> Dict[str, object]:
        """A JSON-ready dump of configuration plus traffic counters."""
        return {
            "shards": self.shards,
            "shard_capacity": self.shard_capacity,
            "hits": self._hits.value,
            "misses": self._misses.value,
            "inserts": self._inserts.value,
            "evictions": self._evictions.value,
            "entries": len(self),
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:
        return (
            f"ShardedPlanCache(shards={self.shards}, "
            f"shard_capacity={self.shard_capacity}, "
            f"entries={len(self)})"
        )
