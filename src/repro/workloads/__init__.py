"""Multi-query workloads: generation and batch evaluation.

The paper evaluates planning per query but motivates RAQO with workload
economics (SLAs, monetary budgets, across-query resource-plan caching).
This package generates mixed workloads over a catalog and runs them
through any planner configuration, aggregating the planning-side and
execution-side metrics.
"""

from repro.workloads.generator import WorkloadSpec, generate_workload
from repro.workloads.runner import (
    WorkloadReport,
    WorkloadRunner,
    compare_planners,
)

__all__ = [
    "WorkloadReport",
    "WorkloadRunner",
    "WorkloadSpec",
    "compare_planners",
    "generate_workload",
]
