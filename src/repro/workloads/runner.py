"""Workload execution: run a batch of queries through a planner.

Aggregates both sides of the paper's story per workload: the planning
overheads (wall time, resource configurations explored, cache behaviour)
and the simulated execution outcomes (time, resources used, dollars) when
the produced plans run on the engine simulator.

Independent queries can be planned concurrently, two ways:

- ``run(max_workers=N)`` fans the workload out over a *thread pool*,
  giving each worker thread its own planner clone (own coster, own
  resource plan cache) so no mutable planner state is shared.
- ``run(processes=N)`` fans it out over a *process pool*: each worker
  process rebuilds the planner from its picklable constructor state
  (catalog, fitted cost model, knobs) once, then plans its share of the
  queries free of the GIL. Traced runs give each worker a same-seed
  child tracer and graft the finished spans back onto the parent
  tracer, so the merged canonical span tree is byte-identical to a
  serial run.

Results always come back in submission order, and with the default
``clear_cache_between_queries=True`` planner the parallel report is
identical to the sequential one except for wall-clock timings.
"""

from __future__ import annotations

import math
import multiprocessing
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.catalog.queries import Query
from repro.cluster.containers import ResourceConfiguration
from repro.core.raqo import DEFAULT_QO_RESOURCES, RaqoPlanner
from repro.engine.executor import execute_plan
from repro.engine.profiles import EngineProfile, HIVE_PROFILE
from repro.faults.model import FaultPlan
from repro.faults.recovery import RecoveryPolicy
from repro.obs.telemetry import TelemetryPlane
from repro.obs.tracing import SpanHandle, Tracer


@dataclass(frozen=True)
class QueryOutcome:
    """Planning + execution result for one workload query."""

    query: Query
    planning_ms: float
    resource_iterations: int
    cache_hits: int
    predicted_time_s: float
    executed_time_s: float
    executed_gb_seconds: float
    executed_dollars: float
    executed_feasible: bool = True
    #: Fault/recovery counters (all zero without fault injection).
    retries: int = 0
    faults_injected: int = 0
    degraded_stages: int = 0


@dataclass(frozen=True)
class WorkloadReport:
    """Aggregated workload metrics."""

    label: str
    outcomes: Tuple[QueryOutcome, ...]

    @property
    def total_planning_ms(self) -> float:
        """Total optimizer wall time across the workload."""
        return sum(o.planning_ms for o in self.outcomes)

    @property
    def total_resource_iterations(self) -> int:
        """Total resource configurations explored."""
        return sum(o.resource_iterations for o in self.outcomes)

    @property
    def total_executed_time_s(self) -> float:
        """Total simulated execution time."""
        return sum(o.executed_time_s for o in self.outcomes)

    @property
    def total_dollars(self) -> float:
        """Total simulated monetary cost."""
        return sum(o.executed_dollars for o in self.outcomes)

    @property
    def cache_hit_total(self) -> int:
        """Total resource-plan-cache hits."""
        return sum(o.cache_hits for o in self.outcomes)

    @property
    def total_retries(self) -> int:
        """Total fault-recovery retries across the workload."""
        return sum(o.retries for o in self.outcomes)

    @property
    def total_faults_injected(self) -> int:
        """Total injected faults across the workload."""
        return sum(o.faults_injected for o in self.outcomes)

    @property
    def total_degraded_stages(self) -> int:
        """Total BHJ -> SMJ degradations across the workload."""
        return sum(o.degraded_stages for o in self.outcomes)

    @property
    def infeasible_queries(self) -> int:
        """Queries whose simulated execution never completed."""
        return sum(1 for o in self.outcomes if not o.executed_feasible)

    def summary_row(self) -> Tuple:
        """A printable aggregate row."""
        return (
            self.label,
            len(self.outcomes),
            self.total_planning_ms,
            self.total_resource_iterations,
            self.total_executed_time_s,
            self.total_dollars,
        )


#: Per-worker-process runner installed by :func:`_init_workload_worker`.
#: One per process, so workload shards never share mutable planner state.
_WORKER_RUNNER: Optional["WorkloadRunner"] = None


def _init_workload_worker(payload: Dict[str, object]) -> None:
    """Process-pool initializer: rebuild the runner from picklable state.

    Runs once per worker process; the rebuilt planner (and its
    deterministically re-fitted statistics) then serves every query the
    pool hands this worker.
    """
    global _WORKER_RUNNER
    kwargs = dict(payload["planner_kwargs"])
    tracer_seed = payload["tracer_seed"]
    if tracer_seed is not None:
        kwargs["tracer"] = Tracer(seed=tracer_seed)
    planner = RaqoPlanner(payload["catalog"], **kwargs)
    _WORKER_RUNNER = WorkloadRunner(
        planner,
        profile=payload["profile"],
        default_resources=payload["default_resources"],
        faults=payload["faults"],
        recovery=payload["recovery"],
    )


def _run_workload_item(
    item: Tuple[int, Query, str],
) -> Tuple["QueryOutcome", Tuple[Dict[str, object], ...]]:
    """Plan and execute one workload query in a worker process.

    Returns the outcome plus the spans this query produced (as
    picklable dicts) for the parent tracer to adopt. The worker's
    ``workload`` span handle is created but never entered: it only
    anchors the query subtree at the same deterministic path the
    parent's real workload root has, so grafted span IDs line up.
    """
    index, query, label = item
    runner = _WORKER_RUNNER
    assert runner is not None, "worker used before initialization"
    planner = runner.planner
    tracer = planner.tracer
    if not tracer.active:
        return runner._run_one(planner, query), ()
    workload_span = tracer.span("workload", kind="planner", key=label)
    outcome = runner._run_traced(
        planner, query, tracer, workload_span, index
    )
    spans = tuple(span.to_dict() for span in tracer.spans())
    tracer.clear()
    return outcome, spans


def _process_pool_context() -> multiprocessing.context.BaseContext:
    """Fork where available (cheap, inherits the fitted model cache);
    the platform default elsewhere."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class WorkloadRunner:
    """Runs workloads through one planner configuration."""

    def __init__(
        self,
        planner: RaqoPlanner,
        profile: EngineProfile = HIVE_PROFILE,
        default_resources: ResourceConfiguration = DEFAULT_QO_RESOURCES,
        faults: Optional[FaultPlan] = None,
        recovery: Optional[RecoveryPolicy] = None,
        telemetry: Optional[TelemetryPlane] = None,
    ) -> None:
        self.planner = planner
        self.profile = profile
        self.default_resources = default_resources
        #: Shared across workers: FaultPlan decisions are pure functions
        #: of (seed, stage, attempt), so parallel runs stay identical to
        #: serial ones.
        self.faults = faults
        self.recovery = recovery
        #: Shared across thread workers too: every windowed record
        #: carries an explicit sim timestamp (each query's plan clock
        #: starts at 0), and window aggregates are order-independent,
        #: so serial and thread-parallel runs produce byte-identical
        #: sim-domain snapshots.  Process pools skip live telemetry --
        #: the plane is not picklable -- and rely on span harvesting
        #: (:meth:`repro.obs.events.EventLog.harvest_tracer`) instead.
        self.telemetry = telemetry

    def _run_one(
        self, planner: RaqoPlanner, query: Query
    ) -> QueryOutcome:
        """Plan and execute a single workload query on ``planner``."""
        result = planner.optimize(query)
        # Scope faults per query (by its stable name): two queries
        # sharing a join stage draw independent fault fates, while
        # decisions stay order-independent so serial == parallel.
        faults = (
            self.faults.scoped(query.name)
            if self.faults is not None
            else None
        )
        execution = execute_plan(
            result.plan,
            planner.estimator,
            self.profile,
            default_resources=self.default_resources,
            faults=faults,
            recovery=self.recovery,
            tracer=planner.tracer,
            telemetry=self.telemetry,
        )
        return QueryOutcome(
            query=query,
            planning_ms=result.wall_time_s * 1000.0,
            resource_iterations=result.resource_iterations,
            cache_hits=result.counters.cache_hits,
            predicted_time_s=result.cost.time_s,
            executed_time_s=execution.time_s,
            executed_gb_seconds=execution.gb_seconds,
            executed_dollars=execution.dollars,
            executed_feasible=execution.feasible,
            retries=execution.retries,
            faults_injected=execution.faults_injected,
            degraded_stages=execution.degraded_stages,
        )

    def _run_traced(
        self,
        planner: RaqoPlanner,
        query: Query,
        tracer: Tracer,
        workload_span: SpanHandle,
        index: int,
    ) -> QueryOutcome:
        """Run one query inside its ``query`` span.

        The span is keyed by the query's workload position and parented
        explicitly on the workload root, so its ID -- and those of the
        plan/run subtrees opened beneath it -- do not depend on which
        worker thread picked the query up.
        """
        with tracer.span(
            "query",
            kind="planner",
            parent=workload_span,
            key=str(index),
        ) as span:
            span.set_attributes({"index": index, "query": query.name})
            outcome = self._run_one(planner, query)
            span.set_attributes(
                {
                    "feasible": outcome.executed_feasible,
                    "retries": outcome.retries,
                    "faults_injected": outcome.faults_injected,
                    "degraded_stages": outcome.degraded_stages,
                    "wall_planning_ms": outcome.planning_ms,
                }
            )
            if math.isfinite(outcome.executed_time_s):
                span.set_attribute(
                    "executed_time_s", outcome.executed_time_s
                )
            return outcome

    def run(
        self,
        queries: Sequence[Query],
        label: str = "workload",
        max_workers: int = 1,
        processes: int = 0,
    ) -> WorkloadReport:
        """Plan and execute every query; returns the aggregate report.

        ``max_workers > 1`` plans independent queries concurrently on a
        thread pool. Each worker thread plans on its own
        :meth:`RaqoPlanner.clone`, so per-query counters cannot
        interleave and the resource plan cache is never shared across
        threads (warm-cache planners therefore keep one cache *per
        worker* when parallel). ``pool.map`` preserves submission order,
        so the report's outcome order matches the input order exactly.

        ``processes > 0`` shards the workload over a process pool
        instead (mutually exclusive with ``max_workers > 1``): each
        worker process rebuilds the planner once from
        :meth:`RaqoPlanner.picklable_init_kwargs` and plans its queries
        without sharing the GIL. Threads win when the per-query work is
        dominated by the stacked numpy kernels (which release little
        Python time anyway) or when pool startup must be free; processes
        win for numpy-light planning (hill climbing, many small
        queries), where the GIL serializes threads.

        Tracing rides the planner's tracer: an active tracer gets one
        ``workload`` root span (keyed by ``label``) with a ``query``
        child per entry, and -- because fault decisions and span keys
        are order-independent -- the same seed produces byte-identical
        span trees whether the workload runs serially, on threads, or
        on processes (for the default clear-cache-between-queries
        planner, whose counters do not depend on execution order).
        """
        if max_workers < 1:
            raise ValueError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        if processes < 0:
            raise ValueError(
                f"processes must be >= 0, got {processes}"
            )
        if processes and max_workers > 1:
            raise ValueError(
                "choose thread workers or processes, not both"
            )
        if processes:
            return self._run_processes(queries, label, processes)
        tracer = self.planner.tracer
        if not tracer.active:
            return self._run_untraced(queries, label, max_workers)
        with tracer.span(
            "workload", kind="planner", key=label
        ) as workload_span:
            workload_span.set_attributes(
                {
                    "label": label,
                    "queries": len(queries),
                    "faulted": self.faults is not None,
                }
            )
            if max_workers == 1 or len(queries) <= 1:
                outcomes: List[QueryOutcome] = [
                    self._run_traced(
                        self.planner, query, tracer, workload_span, i
                    )
                    for i, query in enumerate(queries)
                ]
            else:
                local = threading.local()

                def worker(
                    item: Tuple[int, Query],
                ) -> QueryOutcome:
                    index, query = item
                    planner = getattr(local, "planner", None)
                    if planner is None:
                        planner = self.planner.clone()
                        local.planner = planner
                    return self._run_traced(
                        planner, query, tracer, workload_span, index
                    )

                with ThreadPoolExecutor(max_workers=max_workers) as pool:
                    outcomes = list(
                        pool.map(worker, enumerate(queries))
                    )
            report = WorkloadReport(
                label=label, outcomes=tuple(outcomes)
            )
            workload_span.set_attributes(
                {
                    "infeasible": report.infeasible_queries,
                    "total_retries": report.total_retries,
                    "total_faults_injected": (
                        report.total_faults_injected
                    ),
                }
            )
            return report

    def _run_processes(
        self,
        queries: Sequence[Query],
        label: str,
        processes: int,
    ) -> WorkloadReport:
        """Shard the workload over a process pool; see :meth:`run`."""
        tracer = self.planner.tracer
        payload = {
            "catalog": self.planner.catalog,
            "planner_kwargs": self.planner.picklable_init_kwargs(),
            "profile": self.profile,
            "default_resources": self.default_resources,
            "faults": self.faults,
            "recovery": self.recovery,
            "tracer_seed": tracer.seed if tracer.active else None,
        }
        items = [
            (index, query, label)
            for index, query in enumerate(queries)
        ]
        with ProcessPoolExecutor(
            max_workers=processes,
            mp_context=_process_pool_context(),
            initializer=_init_workload_worker,
            initargs=(payload,),
        ) as pool:
            if not tracer.active:
                outcomes = [
                    outcome
                    for outcome, _ in pool.map(_run_workload_item, items)
                ]
                return WorkloadReport(
                    label=label, outcomes=tuple(outcomes)
                )
            with tracer.span(
                "workload", kind="planner", key=label
            ) as workload_span:
                workload_span.set_attributes(
                    {
                        "label": label,
                        "queries": len(queries),
                        "faulted": self.faults is not None,
                    }
                )
                outcomes = []
                for outcome, spans in pool.map(
                    _run_workload_item, items
                ):
                    tracer.adopt(spans)
                    outcomes.append(outcome)
                report = WorkloadReport(
                    label=label, outcomes=tuple(outcomes)
                )
                workload_span.set_attributes(
                    {
                        "infeasible": report.infeasible_queries,
                        "total_retries": report.total_retries,
                        "total_faults_injected": (
                            report.total_faults_injected
                        ),
                    }
                )
                return report

    def _run_untraced(
        self,
        queries: Sequence[Query],
        label: str,
        max_workers: int,
    ) -> WorkloadReport:
        """The original zero-instrumentation execution paths."""
        if max_workers == 1 or len(queries) <= 1:
            outcomes: List[QueryOutcome] = [
                self._run_one(self.planner, query) for query in queries
            ]
            return WorkloadReport(label=label, outcomes=tuple(outcomes))

        local = threading.local()

        def worker(query: Query) -> QueryOutcome:
            planner = getattr(local, "planner", None)
            if planner is None:
                planner = self.planner.clone()
                local.planner = planner
            return self._run_one(planner, query)

        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            outcomes = list(pool.map(worker, queries))
        return WorkloadReport(label=label, outcomes=tuple(outcomes))


def compare_planners(
    planners: Dict[str, RaqoPlanner],
    queries: Sequence[Query],
    profile: EngineProfile = HIVE_PROFILE,
    max_workers: int = 1,
    faults: Optional[FaultPlan] = None,
    recovery: Optional[RecoveryPolicy] = None,
) -> List[WorkloadReport]:
    """Run the same workload through several planner configurations.

    ``faults``/``recovery`` apply identically to every planner's
    execution, so the comparison isolates how *plan choice* affects
    robustness (the fig16 experiment's question).
    """
    return [
        WorkloadRunner(
            planner, profile, faults=faults, recovery=recovery
        ).run(queries, label=label, max_workers=max_workers)
        for label, planner in planners.items()
    ]
