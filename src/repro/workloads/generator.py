"""Workload generation: batches of connected join queries.

Mirrors the enterprise setting the paper leans on ("most enterprises that
run data analytics have traces of past workload executions"): a workload
is a stream of join queries over one catalog, with query sizes drawn from
a configurable distribution. Repeated-template probability controls how
much inter-query similarity exists -- the knob that across-query
resource-plan caching (Fig 15b) exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.catalog.queries import Query
from repro.catalog.random_schema import random_query
from repro.catalog.schema import Catalog


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of a generated workload."""

    num_queries: int
    #: Candidate query sizes (number of relations) and their weights.
    sizes: Tuple[int, ...] = (2, 3, 4, 5)
    size_weights: Tuple[float, ...] = (0.4, 0.3, 0.2, 0.1)
    #: Probability that a query repeats an earlier template (with the
    #: same relations), as recurring production jobs do.
    repeat_probability: float = 0.3

    def __post_init__(self) -> None:
        if self.num_queries < 1:
            raise ValueError(
                f"num_queries must be >= 1, got {self.num_queries}"
            )
        if len(self.sizes) != len(self.size_weights):
            raise ValueError("sizes and size_weights lengths differ")
        if not self.sizes:
            raise ValueError("need at least one candidate size")
        if any(weight < 0 for weight in self.size_weights):
            raise ValueError("size_weights must be non-negative")
        if sum(self.size_weights) <= 0:
            raise ValueError("size_weights must not sum to zero")
        if not 0.0 <= self.repeat_probability <= 1.0:
            raise ValueError(
                "repeat_probability must be in [0, 1], got "
                f"{self.repeat_probability}"
            )


def generate_workload(
    catalog: Catalog, spec: WorkloadSpec, rng: np.random.Generator
) -> List[Query]:
    """Generate ``spec.num_queries`` connected queries over ``catalog``."""
    weights = np.asarray(spec.size_weights, dtype=float)
    weights = weights / weights.sum()
    max_size = len(catalog.table_names)
    queries: List[Query] = []
    for index in range(spec.num_queries):
        if queries and rng.random() < spec.repeat_probability:
            template = queries[int(rng.integers(len(queries)))]
            queries.append(
                Query(name=f"q{index:03d}", tables=template.tables)
            )
            continue
        size = int(rng.choice(spec.sizes, p=weights))
        size = min(size, max_size)
        query = random_query(
            catalog, size, rng, name=f"q{index:03d}"
        )
        queries.append(query)
    return queries
