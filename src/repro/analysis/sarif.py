"""SARIF 2.1.0 export for lint findings.

SARIF (Static Analysis Results Interchange Format) is what code
scanning UIs ingest -- ``repro lint --sarif out.sarif`` produces a log
that ``github/codeql-action/upload-sarif`` turns into inline PR
annotations.  Only the small stable core of the spec is emitted: one
run, a ``tool.driver`` with the full rule catalog, and one ``result``
per finding with a physical location and a stable partial fingerprint
(shared with the baseline layer, so baselined findings keep their
identity across line drift).

The container has no ``jsonschema``, so :func:`validate_sarif` is a
hand-rolled structural checker covering the subset this exporter can
produce; tests run every exported log through it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.baseline import finding_fingerprint
from repro.analysis.framework import Finding, Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_TOOL_NAME = "repro-lint"
_TOOL_URI = "https://github.com/repro/raqo"
_FINGERPRINT_KEY = "reproLint/v1"


def findings_to_sarif(
    findings: Sequence[Finding],
    rules: Sequence[Rule],
    base_dir: Optional[Path] = None,
) -> Dict[str, Any]:
    """Build the SARIF log object for one analysis run.

    ``base_dir`` (default: cwd) becomes the ``%SRCROOT%`` base all
    artifact URIs are expressed against, so logs are machine-portable.
    """
    base = (base_dir or Path.cwd()).resolve()
    catalog = sorted(rules, key=lambda r: r.id)
    rule_index = {rule.id: i for i, rule in enumerate(catalog)}
    results: List[Dict[str, Any]] = []
    for finding in findings:
        results.append(
            {
                "ruleId": finding.rule_id,
                "ruleIndex": rule_index.get(finding.rule_id, -1),
                "level": "error",
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": _relative_uri(finding.path, base),
                                "uriBaseId": "%SRCROOT%",
                            },
                            "region": {
                                "startLine": finding.line,
                                "startColumn": finding.col,
                            },
                        }
                    }
                ],
                "partialFingerprints": {
                    _FINGERPRINT_KEY: finding_fingerprint(finding, base)
                },
            }
        )
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": _TOOL_URI,
                        "rules": [
                            {
                                "id": rule.id,
                                "name": rule.name,
                                "shortDescription": {"text": rule.name},
                                "fullDescription": {
                                    "text": rule.description
                                },
                                "defaultConfiguration": {
                                    "level": "error"
                                },
                            }
                            for rule in catalog
                        ],
                    }
                },
                "originalUriBaseIds": {
                    "%SRCROOT%": {"uri": base.as_uri() + "/"}
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }


def render_sarif(
    findings: Sequence[Finding],
    rules: Sequence[Rule],
    base_dir: Optional[Path] = None,
) -> str:
    """The SARIF log as a JSON string (stable key order)."""
    log = findings_to_sarif(findings, rules, base_dir=base_dir)
    return json.dumps(log, indent=2, sort_keys=True)


def _relative_uri(path: str, base: Path) -> str:
    resolved = Path(path).resolve()
    try:
        return resolved.relative_to(base).as_posix()
    except ValueError:
        return resolved.as_posix()


# ----------------------------------------------------------------------
# Structural validation (no jsonschema in the toolchain)
# ----------------------------------------------------------------------


def validate_sarif(log: Any) -> List[str]:
    """Structural problems in a SARIF log; empty means valid.

    Covers the required shape of the SARIF 2.1.0 subset this exporter
    produces: version/runs at the top, ``tool.driver.name`` plus a
    rule catalog per run, and well-formed results whose ``ruleId`` and
    ``ruleIndex`` agree with the catalog.
    """
    problems: List[str] = []

    def check(condition: bool, message: str) -> bool:
        if not condition:
            problems.append(message)
        return condition

    if not check(isinstance(log, dict), "log must be an object"):
        return problems
    check(
        log.get("version") == SARIF_VERSION,
        f"version must be '{SARIF_VERSION}'",
    )
    runs = log.get("runs")
    if not check(
        isinstance(runs, list) and runs, "runs must be a non-empty array"
    ):
        return problems
    for run_index, run in enumerate(runs):
        prefix = f"runs[{run_index}]"
        if not check(isinstance(run, dict), f"{prefix} must be an object"):
            continue
        driver = run.get("tool", {})
        driver = (
            driver.get("driver", {}) if isinstance(driver, dict) else {}
        )
        if check(
            isinstance(driver, dict) and bool(driver),
            f"{prefix}.tool.driver is required",
        ):
            check(
                isinstance(driver.get("name"), str)
                and bool(driver.get("name")),
                f"{prefix}.tool.driver.name must be a non-empty string",
            )
        rules = driver.get("rules", []) if isinstance(driver, dict) else []
        rule_ids: List[str] = []
        if check(
            isinstance(rules, list), f"{prefix}.tool.driver.rules must "
            "be an array"
        ):
            for i, rule in enumerate(rules):
                if not check(
                    isinstance(rule, dict)
                    and isinstance(rule.get("id"), str),
                    f"{prefix}.tool.driver.rules[{i}].id must be a "
                    "string",
                ):
                    continue
                rule_ids.append(rule["id"])
        results = run.get("results")
        if not check(
            isinstance(results, list), f"{prefix}.results must be an array"
        ):
            continue
        for i, result in enumerate(results):
            rprefix = f"{prefix}.results[{i}]"
            if not check(
                isinstance(result, dict), f"{rprefix} must be an object"
            ):
                continue
            rule_id = result.get("ruleId")
            check(
                isinstance(rule_id, str) and bool(rule_id),
                f"{rprefix}.ruleId must be a non-empty string",
            )
            if rule_ids and isinstance(rule_id, str):
                check(
                    rule_id in rule_ids,
                    f"{rprefix}.ruleId '{rule_id}' missing from the "
                    "rule catalog",
                )
            rule_index = result.get("ruleIndex")
            if rule_index is not None and isinstance(rule_id, str):
                check(
                    isinstance(rule_index, int)
                    and 0 <= rule_index < len(rule_ids)
                    and rule_ids[rule_index] == rule_id,
                    f"{rprefix}.ruleIndex disagrees with ruleId",
                )
            message = result.get("message")
            check(
                isinstance(message, dict)
                and isinstance(message.get("text"), str),
                f"{rprefix}.message.text must be a string",
            )
            for j, location in enumerate(result.get("locations", [])):
                lprefix = f"{rprefix}.locations[{j}]"
                physical = (
                    location.get("physicalLocation")
                    if isinstance(location, dict)
                    else None
                )
                if not check(
                    isinstance(physical, dict),
                    f"{lprefix}.physicalLocation must be an object",
                ):
                    continue
                artifact = physical.get("artifactLocation")
                check(
                    isinstance(artifact, dict)
                    and isinstance(artifact.get("uri"), str),
                    f"{lprefix}.physicalLocation.artifactLocation.uri "
                    "must be a string",
                )
                region = physical.get("region")
                if region is not None and check(
                    isinstance(region, dict),
                    f"{lprefix}.physicalLocation.region must be an "
                    "object",
                ):
                    start_line = region.get("startLine")
                    check(
                        isinstance(start_line, int) and start_line >= 1,
                        f"{lprefix}.physicalLocation.region.startLine "
                        "must be a positive integer",
                    )
    return problems
