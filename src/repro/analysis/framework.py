"""The AST analysis framework: rules, modules, scoping, findings.

Design
------

A *rule* is a class with an ``id`` (``RAQO0xx``), a short ``name`` slug
used in suppression comments, and a ``check`` method that yields
:class:`Finding` objects for one parsed module.  Rules register
themselves with :func:`register_rule`; :func:`run_analysis` runs every
registered rule (or a caller-chosen subset) over a set of files.

A *module* is parsed once into a :class:`ModuleInfo`: its AST, its
dotted name inside the package (derived from ``__init__.py`` parents),
and its suppression comments.  Findings on a line carrying
``# lint: disable=<rule>`` (or preceded by a standalone comment line of
that form, or in a file whose first lines carry
``# lint: disable-file=<rule>``) are dropped; ``<rule>`` may be the
rule id, its name slug, or ``all``.

Scoped rules declare ``scope_roots``: dotted module names from which an
intra-package import graph is walked.  Only modules *reachable* from a
root are checked -- e.g. the thread-safety pass only applies to code
the parallel workload runner can actually execute.  Standalone files
outside any package (test fixtures) are always in scope, so rules can
be exercised on snippets.
"""

from __future__ import annotations

import ast
import difflib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover -- import cycle guard
    from repro.analysis.flow.symbols import ProjectModel

#: Trailing or standalone suppression: ``lint: disable=RAQO001,RAQO004``.
_SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\-]+)")
#: File-wide suppression, honoured within the first lines of a file.
_SUPPRESS_FILE_RE = re.compile(r"#\s*lint:\s*disable-file=([A-Za-z0-9_,\-]+)")
#: Declares which module-level lock guards a mutable binding.
_GUARD_RE = re.compile(r"#\s*lint:\s*guarded-by=([A-Za-z_][A-Za-z0-9_]*)")
#: How many leading lines may carry a ``disable-file`` pragma.
_FILE_PRAGMA_WINDOW = 10


class AnalysisError(Exception):
    """Raised for unusable analysis inputs (bad path, unparsable file)."""


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    rule_name: str
    message: str

    def render(self) -> str:
        """The canonical ``file:line:col: ID [name] message`` form."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.rule_name}] {self.message}"
        )


@dataclass
class ModuleInfo:
    """One parsed source file plus its lint metadata."""

    path: Path
    #: Dotted module name when the file sits inside a package
    #: (``repro.core.raqo``); None for standalone files.
    module: Optional[str]
    source: str
    tree: ast.Module
    #: line number -> rule ids/names suppressed on that line.
    line_suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    #: Rule ids/names suppressed for the whole file.
    file_suppressions: Set[str] = field(default_factory=set)
    #: line number -> lock name declared via ``# lint: guarded-by=NAME``.
    guards: Dict[int, str] = field(default_factory=dict)

    @classmethod
    def parse(
        cls, path: Union[str, Path], source: Optional[str] = None
    ) -> "ModuleInfo":
        """Parse one file (or an explicit ``source`` string) for analysis."""
        path = Path(path)
        if source is None:
            try:
                source = path.read_text(encoding="utf-8")
            except OSError as exc:
                raise AnalysisError(f"cannot read {path}: {exc}") from exc
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise AnalysisError(f"cannot parse {path}: {exc}") from exc
        info = cls(
            path=path,
            module=_dotted_module_name(path),
            source=source,
            tree=tree,
        )
        _collect_pragmas(info)
        return info

    def is_suppressed(self, finding: Finding, rule: "Rule") -> bool:
        """True when a pragma silences this finding."""
        labels = {rule.id, rule.name, "all"}
        if labels & self.file_suppressions:
            return True
        return bool(labels & self.line_suppressions.get(finding.line, set()))

    def guard_on_line(self, line: int) -> Optional[str]:
        """The lock name a ``guarded-by`` pragma declares on ``line``."""
        return self.guards.get(line)


def _dotted_module_name(path: Path) -> Optional[str]:
    """Derive ``repro.core.raqo`` from a path by walking __init__ parents."""
    path = path.resolve()
    if path.suffix != ".py":
        return None
    packages: List[str] = []
    current = path.parent
    while (current / "__init__.py").exists():
        packages.append(current.name)
        parent = current.parent
        if parent == current:
            break
        current = parent
    if not packages:
        # Not inside any package: a standalone file (fixture, script).
        return None
    parts = list(reversed(packages))
    if path.name != "__init__.py":
        parts.append(path.stem)
    return ".".join(parts)


def _collect_pragmas(info: ModuleInfo) -> None:
    """Populate suppression and guard tables from the source comments."""
    lines = info.source.splitlines()
    for number, text in enumerate(lines, start=1):
        stripped = text.strip()
        match = _SUPPRESS_RE.search(text)
        if match:
            labels = {part for part in match.group(1).split(",") if part}
            if stripped.startswith("#"):
                # A standalone pragma comment suppresses the next line.
                info.line_suppressions.setdefault(number + 1, set()).update(
                    labels
                )
            else:
                info.line_suppressions.setdefault(number, set()).update(
                    labels
                )
        guard = _GUARD_RE.search(text)
        if guard:
            info.guards[number] = guard.group(1)
        if number <= _FILE_PRAGMA_WINDOW:
            file_match = _SUPPRESS_FILE_RE.search(text)
            if file_match:
                info.file_suppressions.update(
                    part
                    for part in file_match.group(1).split(",")
                    if part
                )


class ImportGraph:
    """Intra-package import edges between the analyzed modules."""

    def __init__(self, modules: Iterable[ModuleInfo]) -> None:
        self._edges: Dict[str, Set[str]] = {}
        infos = [m for m in modules if m.module is not None]
        known = {m.module for m in infos if m.module is not None}
        for info in infos:
            assert info.module is not None
            self._edges[info.module] = self._module_edges(info, known)

    @staticmethod
    def _module_edges(info: ModuleInfo, known: Set[str]) -> Set[str]:
        edges: Set[str] = set()

        def add(candidate: Optional[str]) -> None:
            if candidate is None:
                return
            # ``from repro.core import raqo`` names the submodule; also
            # record the package itself so its __init__ re-exports count.
            while candidate:
                if candidate in known:
                    edges.add(candidate)
                if "." not in candidate:
                    break
                candidate = candidate.rsplit(".", 1)[0]

        assert info.module is not None
        package_parts = info.module.split(".")
        if info.path.name != "__init__.py":
            package_parts = package_parts[:-1]
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    add(alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base_parts = package_parts[
                        : len(package_parts) - (node.level - 1)
                    ]
                    base = ".".join(
                        base_parts + ([node.module] if node.module else [])
                    )
                else:
                    base = node.module or ""
                if base:
                    add(base)
                for alias in node.names:
                    if base:
                        add(f"{base}.{alias.name}")
        return edges

    def has_module(self, module: str) -> bool:
        """True when ``module`` was part of the analyzed set."""
        return module in self._edges

    def imports_of(self, module: str) -> Set[str]:
        """Direct intra-package imports of one module."""
        return set(self._edges.get(module, set()))

    def reachable_from(self, roots: Sequence[str]) -> Set[str]:
        """All analyzed modules transitively imported from ``roots``."""
        seen: Set[str] = set()
        stack = [root for root in roots if root in self._edges]
        while stack:
            module = stack.pop()
            if module in seen:
                continue
            seen.add(module)
            stack.extend(self._edges.get(module, set()) - seen)
        return seen


@dataclass
class AnalysisSession:
    """Everything one analysis run shares across rules."""

    modules: List[ModuleInfo]
    graph: ImportGraph
    #: Lazily-built whole-program model (symbol table + call graph +
    #: taint/lock/unit/pickle analyses); shared by every flow rule so
    #: the call graph is constructed exactly once per run.
    _flow: Optional["ProjectModel"] = field(
        default=None, repr=False, compare=False
    )
    #: Lazily-computed unsuppressed findings of every non-meta rule,
    #: keyed by module path (used by the dead-suppression pass).
    _raw_findings: Optional[Dict[str, List[Finding]]] = field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def from_modules(cls, modules: Iterable[ModuleInfo]) -> "AnalysisSession":
        modules = list(modules)
        return cls(modules=modules, graph=ImportGraph(modules))

    def flow(self) -> "ProjectModel":
        """The whole-program model, built on first use and cached."""
        if self._flow is None:
            from repro.analysis.flow.symbols import ProjectModel

            self._flow = ProjectModel.build(self.modules)
        return self._flow

    def unsuppressed_findings(self) -> Dict[str, List[Finding]]:
        """Findings of every non-meta rule with pragmas ignored.

        Cached per session: the dead-suppression pass asks "would this
        pragma have silenced anything?", which needs the full finding
        set exactly once regardless of how many modules carry pragmas.
        """
        if self._raw_findings is None:
            per_path: Dict[str, List[Finding]] = {}
            primary = [r for r in all_rules() if not r.meta_rule]
            for info in self.modules:
                found: List[Finding] = []
                for rule in primary:
                    if not self.in_scope(info, rule.scope_roots):
                        continue
                    found.extend(rule.check(info, self))
                per_path[str(info.path)] = found
            self._raw_findings = per_path
        return self._raw_findings

    def in_scope(self, info: ModuleInfo, roots: Tuple[str, ...]) -> bool:
        """Whether a scoped rule applies to ``info``.

        Unscoped rules (empty ``roots``) apply everywhere.  Standalone
        files and partial trees that contain none of the roots fail
        *open* so fixtures exercise every rule.
        """
        if not roots:
            return True
        if info.module is None:
            return True
        known_roots = [r for r in roots if self.graph.has_module(r)]
        if not known_roots:
            return True
        reachable = self.graph.reachable_from(known_roots)
        return info.module in reachable


class Rule:
    """Base class for one analysis pass.

    Subclasses set ``id`` / ``name`` / ``description``, optionally
    ``scope_roots`` (dotted modules whose import-reachable set bounds
    the rule), and implement :meth:`check`.
    """

    id: str = ""
    name: str = ""
    description: str = ""
    #: When non-empty: only modules import-reachable from these roots
    #: are checked (see :meth:`AnalysisSession.in_scope`).
    scope_roots: Tuple[str, ...] = ()
    #: Meta rules inspect the *other* rules' findings (dead-suppression)
    #: and are excluded from :meth:`AnalysisSession.unsuppressed_findings`
    #: to avoid recursion.
    meta_rule: bool = False

    def check(
        self, info: ModuleInfo, session: AnalysisSession
    ) -> Iterator[Finding]:
        """Yield findings for one module."""
        raise NotImplementedError

    def finding(
        self, info: ModuleInfo, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at an AST node."""
        return Finding(
            path=str(info.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.id,
            rule_name=self.name,
            message=message,
        )


#: Registered rule classes by id (insertion-ordered; report order is
#: re-sorted by id so registration order never matters).
_RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_class.id or not rule_class.name:
        raise AnalysisError(
            f"rule {rule_class.__name__} must define id and name"
        )
    existing = _RULE_REGISTRY.get(rule_class.id)
    if existing is not None and existing is not rule_class:
        raise AnalysisError(f"duplicate rule id {rule_class.id}")
    _RULE_REGISTRY[rule_class.id] = rule_class
    return rule_class


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, sorted by id."""
    return [
        _RULE_REGISTRY[rule_id]() for rule_id in sorted(_RULE_REGISTRY)
    ]


def resolve_rules(selectors: Optional[Sequence[str]]) -> List[Rule]:
    """Rules matching ``selectors`` (ids or name slugs); all when None."""
    rules = all_rules()
    if not selectors:
        return rules
    wanted = set(selectors)
    chosen = [r for r in rules if r.id in wanted or r.name in wanted]
    known = {r.id for r in rules} | {r.name for r in rules}
    unknown = wanted - known
    if unknown:
        hints = []
        for selector in sorted(unknown):
            close = difflib.get_close_matches(
                selector, sorted(known), n=1, cutoff=0.6
            )
            hints.append(
                f"{selector} (did you mean {close[0]}?)"
                if close
                else selector
            )
        valid = ", ".join(f"{r.id}/{r.name}" for r in rules)
        raise AnalysisError(
            f"unknown rule selector(s): {'; '.join(hints)}. "
            f"Valid selectors: {valid}"
        )
    return chosen


def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """All ``.py`` files under the given files/directories, sorted."""
    collected: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            collected.update(
                p
                for p in path.rglob("*.py")
                if not any(part.startswith(".") for part in p.parts)
            )
        elif path.is_file():
            collected.add(path)
        else:
            raise AnalysisError(f"no such file or directory: {path}")
    return sorted(collected)


def run_analysis(
    paths: Sequence[Union[str, Path]],
    rules: Optional[Sequence[Rule]] = None,
    respect_suppressions: bool = True,
) -> List[Finding]:
    """Run rules over all python files under ``paths``; sorted findings."""
    files = iter_python_files(paths)
    modules = [ModuleInfo.parse(path) for path in files]
    return run_analysis_on_modules(
        modules, rules=rules, respect_suppressions=respect_suppressions
    )


def run_analysis_on_modules(
    modules: Sequence[ModuleInfo],
    rules: Optional[Sequence[Rule]] = None,
    respect_suppressions: bool = True,
) -> List[Finding]:
    """Run rules over already-parsed modules; findings sorted by location."""
    active = list(rules) if rules is not None else all_rules()
    session = AnalysisSession.from_modules(modules)
    findings: List[Finding] = []
    for info in session.modules:
        for rule in active:
            if not session.in_scope(info, rule.scope_roots):
                continue
            for found in rule.check(info, session):
                if respect_suppressions and info.is_suppressed(found, rule):
                    continue
                findings.append(found)
    return sorted(findings)
