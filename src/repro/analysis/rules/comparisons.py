"""RAQO004 float-cost-compare: no raw ``==``/``!=`` on cost values.

Costs are floats produced by learned models and vectorized kernels; the
vectorized fast paths are only *bit-identical* to the scalar reference
because nothing in the pipeline branches on exact float equality.  A
raw ``==`` on a cost is either a latent tie-break bug or a disguised
zero-check; both belong in the sanctioned helpers of
:mod:`repro.core.numeric` (``costs_equal``, ``is_effectively_zero``),
which make the tolerance policy explicit and auditable in one place.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional, Tuple

from repro.analysis.framework import (
    AnalysisSession,
    Finding,
    ModuleInfo,
    Rule,
    register_rule,
)

#: Identifiers treated as cost-valued: ``cost``, ``best_cost``,
#: ``time_s``, ``predicted_time_s``, ``money``, ``executed_dollars``...
_COST_NAME_RE = re.compile(r"(?:^|_)(?:cost|costs|time_s|money|dollars)$")

#: Modules allowed to compare raw floats: the sanctioned helpers.
_SANCTIONED_MODULES: Tuple[str, ...] = ("repro.core.numeric",)


def _cost_operand(node: ast.AST) -> Optional[str]:
    """The cost-ish identifier an expression reads, if any."""
    if isinstance(node, ast.Name) and _COST_NAME_RE.search(node.id):
        return node.id
    if isinstance(node, ast.Attribute) and _COST_NAME_RE.search(node.attr):
        return node.attr
    if isinstance(node, ast.Call):
        # Cost.scalar(...) results are scalarised costs.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "scalar"
        ):
            return "scalar()"
    return None


@register_rule
class FloatCostCompareRule(Rule):
    """RAQO004: raw equality on cost values is banned."""

    id = "RAQO004"
    name = "float-cost-compare"
    description = (
        "== / != on cost-valued floats (cost, time_s, money, dollars) "
        "must go through repro.core.numeric (costs_equal / "
        "is_effectively_zero) so the tolerance policy lives in one place"
    )

    def check(
        self, info: ModuleInfo, session: AnalysisSession
    ) -> Iterator[Finding]:
        if info.module in _SANCTIONED_MODULES:
            return
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (operands[index], operands[index + 1]):
                    name = _cost_operand(side)
                    if name is not None:
                        symbol = "==" if isinstance(op, ast.Eq) else "!="
                        yield self.finding(
                            info,
                            node,
                            f"raw '{symbol}' on cost value '{name}'; "
                            "use repro.core.numeric.costs_equal / "
                            "is_effectively_zero",
                        )
                        break
