"""RAQO008 untyped-public-api: exported callables must be annotated.

The repo ships a ``py.typed`` marker, so downstream users type-check
against these signatures; an unannotated public function silently
degrades to ``Any`` and the strict-ish mypy gate loses all leverage
over its callers.  The rule requires every *public* module-level
function and every public method (plus ``__init__``) to annotate all
parameters (``self``/``cls`` excepted) and the return type.  Private
helpers (leading underscore) and nested functions are exempt -- mypy's
``check_untyped_defs`` still type-checks their bodies.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Union

from repro.analysis.framework import (
    AnalysisSession,
    Finding,
    ModuleInfo,
    Rule,
    register_rule,
)

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _is_public(name: str) -> bool:
    if name == "__init__":
        return True
    if name.startswith("__") and name.endswith("__"):
        return False  # other dunders have well-known signatures
    return not name.startswith("_")


def _is_staticmethod(node: _FunctionNode) -> bool:
    return any(
        isinstance(dec, ast.Name) and dec.id == "staticmethod"
        for dec in node.decorator_list
    )


@register_rule
class UntypedPublicApiRule(Rule):
    """RAQO008: public functions/methods need complete annotations."""

    id = "RAQO008"
    name = "untyped-public-api"
    description = (
        "public module-level functions and public methods (incl. "
        "__init__) must annotate every parameter and the return type; "
        "unannotated public APIs degrade to Any for py.typed consumers"
    )

    def check(
        self, info: ModuleInfo, session: AnalysisSession
    ) -> Iterator[Finding]:
        yield from self._check_body(info, info.tree.body, is_class=False)

    def _check_body(
        self,
        info: ModuleInfo,
        body: List[ast.stmt],
        is_class: bool,
    ) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_public(stmt.name):
                    yield from self._check_function(info, stmt, is_class)
            elif isinstance(stmt, ast.ClassDef) and _is_public(stmt.name):
                yield from self._check_body(info, stmt.body, is_class=True)

    def _check_function(
        self, info: ModuleInfo, node: _FunctionNode, is_method: bool
    ) -> Iterator[Finding]:
        args = node.args
        positional = [*args.posonlyargs, *args.args]
        skip_first = is_method and not _is_staticmethod(node) and positional
        if skip_first:
            positional = positional[1:]  # self / cls
        unannotated = [
            arg.arg
            for arg in [*positional, *args.kwonlyargs]
            if arg.annotation is None
        ]
        for vararg, prefix in ((args.vararg, "*"), (args.kwarg, "**")):
            if vararg is not None and vararg.annotation is None:
                unannotated.append(f"{prefix}{vararg.arg}")
        if unannotated:
            yield self.finding(
                info,
                node,
                f"public function '{node.name}' has unannotated "
                f"parameter(s): {', '.join(unannotated)}",
            )
        if node.returns is None:
            yield self.finding(
                info,
                node,
                f"public function '{node.name}' is missing a return "
                "annotation",
            )
