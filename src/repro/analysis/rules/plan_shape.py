"""RAQO007 positional-dimension-index: resource axes are named, not
numbered.

PR 1 fixed a bug where the BHJ feasibility check indexed
``cluster.dimensions[1]`` to find the memory axis -- correct until the
dimension tuple is reordered or extended (the paper explicitly keeps
the resource vector extensible: "our experiments can naturally be
extended to include other resources, such as CPU").  This pass
generalizes that fix: any subscript of a dimension collection
(``dims[0]``, ``cluster.dimensions[1]``, ``step_sizes[0]``,
``config.as_vector()[1]``) with a *constant* index is flagged; use
:meth:`ClusterConditions.dimension` (lookup by name) or iterate all
dimensions uniformly.  Loop-variable subscripts (``steps[dim_index]``)
stay legal: they treat every axis the same.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.framework import (
    AnalysisSession,
    Finding,
    ModuleInfo,
    Rule,
    register_rule,
)

#: Names that (by project convention) hold the dimension tuple or the
#: positional resource vector.
_DIMENSION_NAMES = {"dims", "dimensions", "step_sizes"}


def _dimension_holder(node: ast.AST) -> Optional[str]:
    """A printable label when ``node`` denotes a dimension collection."""
    if isinstance(node, ast.Name) and node.id in _DIMENSION_NAMES:
        return node.id
    if isinstance(node, ast.Attribute) and node.attr in _DIMENSION_NAMES:
        return node.attr
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "as_vector"
    ):
        return "as_vector()"
    return None


@register_rule
class PositionalDimensionIndexRule(Rule):
    """RAQO007: no constant positional indexing into resource axes."""

    id = "RAQO007"
    name = "positional-dimension-index"
    description = (
        "resource dimensions must be selected by name "
        "(ClusterConditions.dimension('container_gb')) or iterated "
        "uniformly, never via a hard-coded position: reordering or "
        "extending the axis list would silently pick the wrong axis"
    )

    def check(
        self, info: ModuleInfo, session: AnalysisSession
    ) -> Iterator[Finding]:
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Subscript):
                continue
            holder = _dimension_holder(node.value)
            if holder is None:
                continue
            index = node.slice
            if isinstance(index, ast.Constant) and isinstance(
                index.value, int
            ):
                yield self.finding(
                    info,
                    node,
                    f"positional index [{index.value}] into '{holder}'; "
                    "select resource axes by name "
                    "(e.g. cluster.dimension('container_gb'))",
                )
