"""RAQO009 positional-resource-axes: axis constructors take keywords.

The resource axes of the public constructors --
``ResourceConfiguration(num_containers=, container_gb=)`` and
``ClusterConditions(max_containers=, max_container_gb=, ...)`` -- are
keyword-only in the public API: ``(10, 4.0)`` silently transposes if
the axis order ever changes, ``num_containers=10, container_gb=4.0``
cannot.  The constructors keep a one-release positional shim (emitting
:class:`DeprecationWarning`) for downstream callers; this pass keeps
the source tree itself off the shim so the deprecation can complete.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import (
    AnalysisSession,
    Finding,
    ModuleInfo,
    Rule,
    register_rule,
)
from repro.analysis.rules._ast_utils import dotted_name

#: Public constructors whose axes must be passed by keyword.
_AXIS_CONSTRUCTORS = frozenset(
    {"ResourceConfiguration", "ClusterConditions"}
)


@register_rule
class PositionalResourceAxesRule(Rule):
    """RAQO009: no positional arguments to axis constructors."""

    id = "RAQO009"
    name = "positional-resource-axes"
    description = (
        "ResourceConfiguration and ClusterConditions take their "
        "resource axes as keywords (num_containers=, container_gb=, "
        "max_containers=, ...); positional axes are deprecated and "
        "transpose silently if the axis order changes"
    )

    def check(
        self, info: ModuleInfo, session: AnalysisSession
    ) -> Iterator[Finding]:
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if name.rsplit(".", 1)[-1] not in _AXIS_CONSTRUCTORS:
                continue
            positional = [
                arg
                for arg in node.args
                if not isinstance(arg, ast.Starred)
            ]
            if not positional and not any(
                isinstance(arg, ast.Starred) for arg in node.args
            ):
                continue
            yield self.finding(
                info,
                node,
                f"positional resource axes in "
                f"{name.rsplit('.', 1)[-1]}(...); pass every axis "
                "by keyword (the positional shim is deprecated)",
            )
