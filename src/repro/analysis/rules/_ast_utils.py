"""Shared AST helpers for the concrete rules."""

from __future__ import annotations

import ast
from typing import Optional, Set, Tuple

#: Call targets that build a mutable container.
MUTABLE_FACTORIES: Set[str] = {
    "dict",
    "list",
    "set",
    "bytearray",
    "defaultdict",
    "deque",
    "Counter",
    "OrderedDict",
}

#: The modules the paper's determinism story depends on: everything the
#: planners and cost models can execute while producing a plan.
PLANNER_COST_ROOTS: Tuple[str, ...] = (
    "repro.core.raqo",
    "repro.core.resource_planner",
    "repro.core.cost_model",
    "repro.planner.selinger",
    "repro.planner.randomized",
)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain; None for anything else."""
    parts = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def is_mutable_literal(node: ast.AST) -> bool:
    """True for expressions that construct a mutable container."""
    if isinstance(
        node,
        (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp),
    ):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is None:
            return False
        return name.rsplit(".", 1)[-1] in MUTABLE_FACTORIES
    return False


def is_set_expression(node: ast.AST) -> bool:
    """True for syntactically-recognizable set values (literal or call)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def call_name(node: ast.Call) -> Optional[str]:
    """The dotted name a call targets, when statically resolvable."""
    return dotted_name(node.func)
