"""Concrete analysis passes codifying the project invariants.

Importing this package registers every rule with the framework's
registry (see :func:`repro.analysis.framework.register_rule`):

- :mod:`determinism` -- RAQO001 unseeded-random, RAQO002 wall-clock,
  RAQO003 set-iteration-order;
- :mod:`comparisons` -- RAQO004 float-cost-compare;
- :mod:`safety` -- RAQO005 shared-mutable-state, RAQO006
  mutable-default-arg;
- :mod:`plan_shape` -- RAQO007 positional-dimension-index;
- :mod:`typing_gate` -- RAQO008 untyped-public-api;
- :mod:`api_compat` -- RAQO009 positional-resource-axes;
- :mod:`batching` -- RAQO010 per-candidate-costing-loop;
- :mod:`whole_program` -- RAQO011 transitive-nondeterminism, RAQO012
  unverified-lock-guard, RAQO013 unit-mismatch, RAQO014
  unpicklable-process-state, RAQO015 dead-suppression (whole-program
  passes over the shared call graph, see :mod:`repro.analysis.flow`).
"""

from repro.analysis.rules import (  # noqa: F401  (registration imports)
    api_compat,
    batching,
    comparisons,
    determinism,
    plan_shape,
    safety,
    typing_gate,
    whole_program,
)

__all__ = [
    "api_compat",
    "batching",
    "comparisons",
    "determinism",
    "plan_shape",
    "safety",
    "typing_gate",
    "whole_program",
]
