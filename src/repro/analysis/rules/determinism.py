"""Determinism passes: RAQO001 unseeded-random, RAQO002 wall-clock,
RAQO003 set-iteration-order.

The paper's switch-point surfaces and plan/resource comparisons only
reproduce when two identical planner invocations return identical
plans.  Three classic nondeterminism sources are banned at the source
level:

- *module-level RNG state* (``random.random()``, ``np.random.rand()``,
  or an unseeded ``np.random.default_rng()``): every random draw must
  flow through a seeded ``numpy.random.Generator`` handed in by the
  caller;
- *wall-clock reads in plan-affecting code* (``time.time()``,
  ``datetime.now()``): timing may be *measured* (``time.perf_counter``
  inside :class:`~repro.planner.cost_interface.Stopwatch`) but must
  never feed a planning decision;
- *set iteration feeding order-sensitive consumers* (``for`` loops,
  ``min``/``max``/``next``/``list``/``tuple``): set order is stable
  within one process but not across processes (hash randomization), so
  plan tie-breaks must sort first (``sorted(...)`` is fine).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set, Tuple

from repro.analysis.framework import (
    AnalysisSession,
    Finding,
    ModuleInfo,
    Rule,
    register_rule,
)
from repro.analysis.rules._ast_utils import (
    PLANNER_COST_ROOTS,
    dotted_name,
    is_set_expression,
)

#: numpy.random attributes that construct *seeded, caller-owned*
#: generators and are therefore allowed.
_ALLOWED_NP_RANDOM = {
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
    "default_rng",
}


def _alias_tables(
    tree: ast.Module,
) -> Tuple[Set[str], Set[str], Set[str], Set[str]]:
    """(stdlib-random, numpy, numpy.random, default_rng) alias names."""
    random_aliases: Set[str] = set()
    numpy_aliases: Set[str] = set()
    np_random_aliases: Set[str] = set()
    rng_factories: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                if alias.name == "random":
                    random_aliases.add(bound)
                elif alias.name == "numpy":
                    numpy_aliases.add(bound)
                elif alias.name == "numpy.random":
                    if alias.asname:
                        np_random_aliases.add(alias.asname)
                    else:
                        numpy_aliases.add("numpy")
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        np_random_aliases.add(alias.asname or alias.name)
            elif node.module == "numpy.random":
                for alias in node.names:
                    if alias.name == "default_rng":
                        rng_factories.add(alias.asname or alias.name)
    return random_aliases, numpy_aliases, np_random_aliases, rng_factories


@register_rule
class UnseededRandomRule(Rule):
    """RAQO001: ban module-level RNG state; require seeded Generators."""

    id = "RAQO001"
    name = "unseeded-random"
    description = (
        "random draws must come from a seeded numpy.random.Generator "
        "passed in by the caller, never from module-level RNG state"
    )

    def check(
        self, info: ModuleInfo, session: AnalysisSession
    ) -> Iterator[Finding]:
        randoms, numpys, np_randoms, rng_factories = _alias_tables(
            info.tree
        )
        for node in ast.walk(info.tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "random":
                    yield self.finding(
                        info,
                        node,
                        "import from the stdlib 'random' module; its "
                        "functions share hidden global RNG state",
                    )
                elif node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name not in _ALLOWED_NP_RANDOM:
                            yield self.finding(
                                info,
                                node,
                                f"'from numpy.random import {alias.name}' "
                                "uses the legacy global RNG; construct a "
                                "seeded Generator via default_rng(seed)",
                            )
            elif isinstance(node, ast.Call):
                yield from self._check_call(
                    info, node, randoms, numpys, np_randoms, rng_factories
                )

    def _check_call(
        self,
        info: ModuleInfo,
        node: ast.Call,
        randoms: Set[str],
        numpys: Set[str],
        np_randoms: Set[str],
        rng_factories: Set[str],
    ) -> Iterator[Finding]:
        name = dotted_name(node.func)
        if name is None:
            return
        parts = name.split(".")
        if (
            len(parts) == 1
            and parts[0] in rng_factories
            and not node.args
            and not node.keywords
        ):
            yield self.finding(
                info,
                node,
                "default_rng() without a seed is nondeterministic; "
                "pass an explicit seed",
            )
            return
        if len(parts) >= 2 and parts[0] in randoms:
            yield self.finding(
                info,
                node,
                f"call to '{name}' uses the stdlib global RNG; draw "
                "from a seeded numpy.random.Generator instead",
            )
            return
        attr = None
        if (
            len(parts) >= 3
            and parts[0] in numpys
            and parts[1] == "random"
        ):
            attr = parts[2]
        elif len(parts) >= 2 and parts[0] in np_randoms:
            attr = parts[1]
        if attr is None:
            return
        if attr not in _ALLOWED_NP_RANDOM:
            yield self.finding(
                info,
                node,
                f"call to '{name}' uses numpy's legacy global RNG; "
                "draw from a seeded Generator (default_rng(seed))",
            )
        elif attr == "default_rng" and not node.args and not node.keywords:
            yield self.finding(
                info,
                node,
                "default_rng() without a seed is nondeterministic; "
                "pass an explicit seed",
            )


def _banned_clock_calls(tree: ast.Module) -> Dict[str, str]:
    """Dotted call name -> why it is banned, per this module's imports."""
    banned: Dict[str, str] = {}
    wall = "reads the wall clock; planning code must be deterministic"
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                if alias.name == "time":
                    banned[f"{bound}.time"] = wall
                elif alias.name == "datetime":
                    for chain in (
                        f"{bound}.datetime.now",
                        f"{bound}.datetime.utcnow",
                        f"{bound}.datetime.today",
                        f"{bound}.date.today",
                    ):
                        banned[chain] = wall
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module == "time":
                for alias in node.names:
                    if alias.name == "time":
                        banned[alias.asname or alias.name] = wall
            elif node.module == "datetime":
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if alias.name == "datetime":
                        for attr in ("now", "utcnow", "today"):
                            banned[f"{bound}.{attr}"] = wall
                    elif alias.name == "date":
                        banned[f"{bound}.today"] = wall
    return banned


@register_rule
class WallClockRule(Rule):
    """RAQO002: no wall-clock reads in planner/cost paths."""

    id = "RAQO002"
    name = "wall-clock"
    description = (
        "time.time()/datetime.now() are banned in code reachable from "
        "the planners and cost models (time.perf_counter, used only "
        "for reported wall-time measurements, is allowed)"
    )
    scope_roots = PLANNER_COST_ROOTS

    def check(
        self, info: ModuleInfo, session: AnalysisSession
    ) -> Iterator[Finding]:
        banned = _banned_clock_calls(info.tree)
        if not banned:
            return
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in banned:
                yield self.finding(
                    info, node, f"call to '{name}' {banned[name]}"
                )


#: Builtins whose result depends on the *iteration order* of their
#: argument (min/max/next only through tie-breaks, which is exactly
#: where planner runs diverge).
_ORDER_SENSITIVE_CONSUMERS = {
    "min",
    "max",
    "next",
    "list",
    "tuple",
    "enumerate",
}


@register_rule
class SetIterationOrderRule(Rule):
    """RAQO003: set iteration must not feed order-sensitive consumers."""

    id = "RAQO003"
    name = "set-iteration-order"
    description = (
        "iterating a set into an order-sensitive consumer (for loops, "
        "min/max/next/list/tuple) makes plan tie-breaks depend on hash "
        "order; sort first (sorted(...) is always allowed)"
    )
    scope_roots = PLANNER_COST_ROOTS

    def check(
        self, info: ModuleInfo, session: AnalysisSession
    ) -> Iterator[Finding]:
        for node in ast.walk(info.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if is_set_expression(node.iter):
                    yield self.finding(
                        info,
                        node.iter,
                        "for-loop over a set: iteration order is "
                        "hash-dependent; iterate sorted(...) instead",
                    )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for generator in node.generators:
                    if is_set_expression(generator.iter):
                        yield self.finding(
                            info,
                            generator.iter,
                            "comprehension over a set: iteration order "
                            "is hash-dependent; iterate sorted(...) "
                            "instead",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in _ORDER_SENSITIVE_CONSUMERS
                    and node.args
                    and is_set_expression(node.args[0])
                ):
                    yield self.finding(
                        info,
                        node,
                        f"'{func.id}(...)' over a set depends on hash "
                        "iteration order for ties; sort first",
                    )
