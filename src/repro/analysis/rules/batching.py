"""RAQO010 per-candidate-costing-loop: DP levels are costed as batches.

The lattice-level batching work costs every candidate of a DP level
(and every join of a randomized candidate plan) through one stacked
``cost_batch`` call. A Python ``for``/``while`` loop (or comprehension)
in the planner search paths that invokes the scalar costing surface --
``join_cost``, ``predict_time`` or ``predict_time_grid`` -- per
candidate reintroduces exactly the per-candidate interpreter overhead
the batch kernel removed, and such regressions are invisible to the
bit-identity tests (the scalar path produces the same answers, just
slowly). The designated scalar *reference* paths carry
``lint: disable=RAQO010`` pragmas; anything else is a finding.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.framework import (
    AnalysisSession,
    Finding,
    ModuleInfo,
    Rule,
    register_rule,
)
from repro.analysis.rules._ast_utils import dotted_name

#: Scalar costing entry points that must not be driven per candidate
#: from a planner search loop.
_SCALAR_COSTING_CALLS = frozenset(
    {"join_cost", "predict_time", "predict_time_grid"}
)

#: The planner search-path modules the rule polices, by exact dotted
#: name (not import-reachability: package ``__init__`` re-exports make
#: the reachable set of any planner module span most of the tree). The
#: coster implementations (``repro.core.raqo``) legitimately loop --
#: e.g. over the sequential tail of a batch -- as do explain/metrics
#: paths that cost a handful of already-chosen operators; the rule
#: guards the DP/search layers that should hand whole levels to
#: ``cost_batch``. Standalone fixture files (no module name) are
#: checked so the test suite can exercise the rule.
PLANNER_SEARCH_MODULES = frozenset(
    {
        "repro.planner.selinger",
        "repro.planner.randomized",
        "repro.planner.bushy",
        "repro.planner.cost_interface",
    }
)

#: Syntactic loop constructs, including comprehension forms.
_LOOP_NODES = (
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


@register_rule
class PerCandidateCostingLoopRule(Rule):
    """RAQO010: no per-candidate scalar costing loops in planners."""

    id = "RAQO010"
    name = "per-candidate-costing-loop"
    description = (
        "planner search paths must cost DP levels through one "
        "cost_batch call; a Python loop invoking join_cost / "
        "predict_time / predict_time_grid per candidate reintroduces "
        "the per-candidate overhead lattice batching removed"
    )
    def check(
        self, info: ModuleInfo, session: AnalysisSession
    ) -> Iterator[Finding]:
        if (
            info.module is not None
            and info.module not in PLANNER_SEARCH_MODULES
        ):
            return
        yield from self._visit(info, info.tree, [])

    def _visit(
        self, info: ModuleInfo, node: ast.AST, loops: List[ast.AST]
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            tail = name.rsplit(".", 1)[-1] if name else None
            if loops and tail in _SCALAR_COSTING_CALLS:
                # Anchor at the innermost enclosing loop so one
                # ``lint: disable=RAQO010`` on the loop line covers
                # every scalar call the loop drives.
                yield self.finding(
                    info,
                    loops[-1],
                    f"per-candidate loop calls scalar {tail}(); cost "
                    "the whole level through one cost_batch "
                    "(CandidateBatch) call instead",
                )
        entered = isinstance(node, _LOOP_NODES)
        if entered:
            loops = loops + [node]
        # Nested functions start a fresh loop context: a closure body
        # is not executed by the loop that lexically surrounds its
        # definition.
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            loops = []
        for child in ast.iter_child_nodes(node):
            yield from self._visit(info, child, loops)
