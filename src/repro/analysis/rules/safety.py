"""Thread-safety passes: RAQO005 shared-mutable-state and RAQO006
mutable-default-arg.

The parallel :class:`~repro.workloads.runner.WorkloadRunner` plans on
one :meth:`RaqoPlanner.clone` per worker thread, so *instance* state is
isolated by construction.  What clones cannot isolate is state attached
to a module or a class object -- that is shared by every thread in the
process.  RAQO005 flags any mutable module-/class-level binding in code
reachable from the parallel runner unless the binding declares, via
``# lint: guarded-by=<LOCK>``, which module-level ``threading.Lock`` /
``RLock`` serializes access to it (the rule verifies the lock exists).

RAQO006 is the classic mutable-default-argument trap: a shared default
``[]``/``{}`` is exactly the kind of cross-call (and cross-thread)
leakage the clone isolation is meant to rule out.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.framework import (
    AnalysisSession,
    Finding,
    ModuleInfo,
    Rule,
    register_rule,
)
from repro.analysis.rules._ast_utils import dotted_name, is_mutable_literal


def _module_locks(tree: ast.Module) -> Set[str]:
    """Names bound at module level to a threading Lock/RLock."""
    locks: Set[str] = set()
    for stmt in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None or not isinstance(value, ast.Call):
            continue
        name = dotted_name(value.func)
        if name is None or name.rsplit(".", 1)[-1] not in ("Lock", "RLock"):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                locks.add(target.id)
    return locks


def _mutable_bindings(
    body: List[ast.stmt],
) -> Iterator[Tuple[ast.stmt, str]]:
    """(statement, bound name) for mutable container bindings in a body."""
    for stmt in body:
        if isinstance(stmt, ast.Assign):
            value = stmt.value
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is None:
                continue
            value = stmt.value
            targets = [stmt.target]
        else:
            continue
        if not is_mutable_literal(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name) and not (
                target.id.startswith("__") and target.id.endswith("__")
            ):
                yield stmt, target.id


@register_rule
class SharedMutableStateRule(Rule):
    """RAQO005: shared mutable state must be lock-guarded."""

    id = "RAQO005"
    name = "shared-mutable-state"
    description = (
        "module- and class-level mutable containers in code reachable "
        "from the parallel WorkloadRunner are shared across worker "
        "threads; guard them with a module-level threading.Lock "
        "declared via '# lint: guarded-by=<LOCK>' (or suppress with a "
        "rationale)"
    )
    scope_roots = ("repro.workloads.runner",)

    def check(
        self, info: ModuleInfo, session: AnalysisSession
    ) -> Iterator[Finding]:
        locks = _module_locks(info.tree)

        def verdicts(
            stmts: List[ast.stmt], owner: str
        ) -> Iterator[Finding]:
            for stmt, name in _mutable_bindings(stmts):
                guard = info.guard_on_line(stmt.lineno)
                if guard is not None:
                    if guard in locks:
                        continue
                    yield self.finding(
                        info,
                        stmt,
                        f"'{name}' declares guarded-by={guard} but no "
                        f"module-level threading.Lock named '{guard}' "
                        "exists",
                    )
                    continue
                yield self.finding(
                    info,
                    stmt,
                    f"{owner} mutable binding '{name}' is shared by "
                    "every worker thread of the parallel runner; guard "
                    "it with a threading.Lock and declare "
                    "'# lint: guarded-by=<LOCK>'",
                )

        yield from verdicts(info.tree.body, "module-level")
        for node in ast.walk(info.tree):
            if isinstance(node, ast.ClassDef):
                yield from verdicts(node.body, f"class-level ({node.name})")


@register_rule
class MutableDefaultArgRule(Rule):
    """RAQO006: no mutable default argument values."""

    id = "RAQO006"
    name = "mutable-default-arg"
    description = (
        "default argument values are evaluated once and shared across "
        "calls (and threads); use None plus an in-body default, or an "
        "immutable value"
    )

    def check(
        self, info: ModuleInfo, session: AnalysisSession
    ) -> Iterator[Finding]:
        for node in ast.walk(info.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                defaults = [
                    *node.args.defaults,
                    *[d for d in node.args.kw_defaults if d is not None],
                ]
                for default in defaults:
                    if is_mutable_literal(default):
                        label = (
                            node.name
                            if not isinstance(node, ast.Lambda)
                            else "<lambda>"
                        )
                        yield self.finding(
                            info,
                            default,
                            f"mutable default argument in '{label}'; "
                            "use None and construct inside the body",
                        )
