"""Whole-program passes: RAQO011-RAQO015.

These rules consume the shared :class:`ProjectModel` built once per
analysis session (:meth:`AnalysisSession.flow`) instead of looking at
one file at a time:

- RAQO011 ``transitive-nondeterminism``: a planner/engine entry point
  transitively reaches a wall-clock / unseeded-RNG / ``os.environ`` /
  set-order source through the call graph.  One-file sources are
  RAQO001-003's territory; this rule only reports chains of at least
  one call hop -- exactly the cases the syntactic rules cannot see.
- RAQO012 ``unverified-lock-guard``: a ``# lint: guarded-by=<LOCK>``
  pragma whose binding is mutated somewhere without ``with <LOCK>:``
  held, or a RAQO005 suppression on a binding that is in fact mutated
  with no lock at all.
- RAQO013 ``unit-mismatch``: unit-incoherent arithmetic over the
  :mod:`repro.core.units` NewTypes (``Seconds + GB``, comparing rows
  with dollars, returning the wrong dimension).
- RAQO014 ``unpicklable-process-state``: a process-pool ``initargs``
  payload ships an instance of a class holding thread primitives
  (locks, ``threading.local``) without custom pickling.
- RAQO015 ``dead-suppression``: a ``# lint: disable=`` pragma that no
  longer suppresses anything -- the finding it silenced is gone, or
  the rule id never existed.  Dead pragmas hide future regressions.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.analysis.framework import (
    _SUPPRESS_FILE_RE,
    _SUPPRESS_RE,
    _FILE_PRAGMA_WINDOW,
    AnalysisSession,
    Finding,
    ModuleInfo,
    Rule,
    all_rules,
    register_rule,
)
from repro.analysis.flow.locks import verify_guards
from repro.analysis.flow.pickles import PickleAnalysis
from repro.analysis.flow.symbols import ProjectModel
from repro.analysis.flow.taint import TaintAnalysis
from repro.analysis.flow.units import UnitChecker


def _taint(session: AnalysisSession) -> TaintAnalysis:
    model = session.flow()
    cached = model.analysis_cache.get("taint")
    if not isinstance(cached, TaintAnalysis):
        cached = TaintAnalysis(model)
        model.analysis_cache["taint"] = cached
    return cached


def _units(session: AnalysisSession) -> UnitChecker:
    model = session.flow()
    cached = model.analysis_cache.get("units")
    if not isinstance(cached, UnitChecker):
        cached = UnitChecker(model)
        model.analysis_cache["units"] = cached
    return cached


def _pickles(session: AnalysisSession) -> PickleAnalysis:
    model = session.flow()
    cached = model.analysis_cache.get("pickles")
    if not isinstance(cached, PickleAnalysis):
        cached = PickleAnalysis(model)
        model.analysis_cache["pickles"] = cached
    return cached


@register_rule
class TransitiveNondeterminismRule(Rule):
    """RAQO011: entry points must not reach nondeterminism sources."""

    id = "RAQO011"
    name = "transitive-nondeterminism"
    description = (
        "a public planner/engine entry point transitively calls into "
        "a wall-clock read, unseeded RNG, os.environ lookup, or "
        "set-order iteration; the repeatability claim (same query + "
        "resources => same plan) breaks even though the entry's own "
        "module looks clean"
    )

    def check(
        self, info: ModuleInfo, session: AnalysisSession
    ) -> Iterator[Finding]:
        analysis = _taint(session)
        model = session.flow()
        path = str(info.path)
        for entry, hits in sorted(analysis.hits_by_entry().items()):
            fn = model.functions.get(entry)
            if fn is None or str(fn.module.path) != path:
                continue
            for hit in hits:
                chain = " -> ".join(hit.chain)
                yield self.finding(
                    info,
                    fn.node,
                    f"'{entry}' transitively reaches "
                    f"{hit.source.kind} source {hit.source.detail} "
                    f"({hit.source.path}:{hit.source.line}, "
                    f"{hit.hops} hop{'s' if hit.hops != 1 else ''} "
                    f"away) via {chain}",
                )


@register_rule
class UnverifiedLockGuardRule(Rule):
    """RAQO012: guard claims must match actual lock dominance."""

    id = "RAQO012"
    name = "unverified-lock-guard"
    description = (
        "a '# lint: guarded-by=<LOCK>' pragma (or a RAQO005 "
        "suppression) claims thread safety, but the binding is "
        "mutated from a function body without that lock held; the "
        "pragma documents a guarantee the code does not provide"
    )

    def check(
        self, info: ModuleInfo, session: AnalysisSession
    ) -> Iterator[Finding]:
        for violation in verify_guards(info):
            anchor = ast.Pass()
            anchor.lineno = violation.line
            anchor.col_offset = 0
            if violation.lock is not None:
                message = (
                    f"'{violation.binding}' is declared guarded-by="
                    f"{violation.lock}, but this mutation "
                    f"({violation.detail}) runs without "
                    f"'with {violation.lock}:' held"
                )
            else:
                message = (
                    f"'{violation.binding}' suppresses RAQO005, but "
                    f"every mutation site ({violation.detail} here) "
                    "runs with no lock held at all; the suppression "
                    "hides a real thread-safety hole"
                )
            yield self.finding(info, anchor, message)


@register_rule
class UnitMismatchRule(Rule):
    """RAQO013: arithmetic must be unit-coherent."""

    id = "RAQO013"
    name = "unit-mismatch"
    description = (
        "adding, subtracting or comparing quantities of different "
        "physical units (Seconds, GB, Rows, Dollars, Containers from "
        "repro.core.units), or returning/assigning a dimension that "
        "contradicts the annotation; wrap explicit conversions in the "
        "unit constructor, e.g. Seconds(gb / throughput)"
    )

    def check(
        self, info: ModuleInfo, session: AnalysisSession
    ) -> Iterator[Finding]:
        checker = _units(session)
        for issue in checker.check_module(info):
            anchor = ast.Pass()
            anchor.lineno = issue.line
            anchor.col_offset = issue.col - 1
            yield self.finding(info, anchor, issue.message)


@register_rule
class UnpicklableProcessStateRule(Rule):
    """RAQO014: process-pool payloads must be picklable."""

    id = "RAQO014"
    name = "unpicklable-process-state"
    description = (
        "a ProcessPoolExecutor/multiprocessing initargs payload ships "
        "an instance of a class holding thread primitives (locks, "
        "threading.local) without __reduce__/__getstate__; the "
        "multiprocessing path fails at runtime with 'cannot pickle "
        "_thread.lock'; ship plain state (e.g. the tracer seed) and "
        "rebuild the object inside the worker"
    )

    def check(
        self, info: ModuleInfo, session: AnalysisSession
    ) -> Iterator[Finding]:
        analysis = _pickles(session)
        for issue in analysis.check_module(info):
            anchor = ast.Pass()
            anchor.lineno = issue.line
            anchor.col_offset = issue.col - 1
            yield self.finding(info, anchor, issue.message)


@register_rule
class DeadSuppressionRule(Rule):
    """RAQO015: every suppression must still suppress something."""

    id = "RAQO015"
    name = "dead-suppression"
    description = (
        "a '# lint: disable=' pragma that silences nothing -- the "
        "finding it once hid is fixed, or the rule id is a typo; "
        "remove the pragma so future regressions surface"
    )
    meta_rule = True

    #: Labels this pass cannot evaluate against the finding set.
    _UNCHECKABLE = frozenset({"all", "RAQO015", "dead-suppression"})

    def check(
        self, info: ModuleInfo, session: AnalysisSession
    ) -> Iterator[Finding]:
        raw = session.unsuppressed_findings().get(str(info.path), [])
        by_line: Dict[int, Set[str]] = {}
        file_labels: Set[str] = set()
        for found in raw:
            by_line.setdefault(found.line, set()).update(
                {found.rule_id, found.rule_name}
            )
            file_labels.update({found.rule_id, found.rule_name})
        known = self._known_labels()
        for line, target, labels in _pragma_sites(info):
            for label in sorted(labels):
                if label in self._UNCHECKABLE:
                    continue
                anchor = ast.Pass()
                anchor.lineno = line
                anchor.col_offset = 0
                if label not in known:
                    yield self.finding(
                        info,
                        anchor,
                        f"suppression names unknown rule '{label}'; "
                        "it can never match a finding",
                    )
                    continue
                live = (
                    label in file_labels
                    if target is None
                    else label in by_line.get(target, set())
                )
                if not live:
                    where = (
                        "anywhere in this file"
                        if target is None
                        else f"on line {target}"
                    )
                    yield self.finding(
                        info,
                        anchor,
                        f"suppression of {label} is dead: no {label} "
                        f"finding {where}; remove the pragma",
                    )

    @staticmethod
    def _known_labels() -> Set[str]:
        labels: Set[str] = set()
        for rule in all_rules():
            labels.update({rule.id, rule.name})
        return labels


def _pragma_sites(
    info: ModuleInfo,
) -> List[Tuple[int, "int | None", Set[str]]]:
    """(pragma line, target line or None for file-wide, labels)."""
    sites: List[Tuple[int, "int | None", Set[str]]] = []
    for number, text in enumerate(info.source.splitlines(), start=1):
        stripped = text.strip()
        match = _SUPPRESS_RE.search(text)
        if match:
            labels = {p for p in match.group(1).split(",") if p}
            target = number + 1 if stripped.startswith("#") else number
            sites.append((number, target, labels))
        if number <= _FILE_PRAGMA_WINDOW:
            file_match = _SUPPRESS_FILE_RE.search(text)
            if file_match:
                labels = {
                    p for p in file_match.group(1).split(",") if p
                }
                sites.append((number, None, labels))
    return sites
