"""Runtime semantic checks for joint query/resource plan well-formedness.

The AST passes keep the *source* honest; this module keeps the *plans*
honest.  :func:`check_plan` walks a plan tree and verifies the
structural invariants every downstream consumer (executor, explain,
serialization) silently assumes:

- **acyclicity / tree shape** -- the operator DAG must be a tree: no
  node object appears twice (a shared subtree would double-count cost
  and resources) and no cycle exists;
- **operator arity** -- joins have exactly two plan-node children, scans
  have none and name a non-empty table; no foreign node types;
- **table disjointness** -- a join's children touch disjoint table
  sets, so each base table is scanned exactly once;
- **resource-vector dimension-name usage** -- per-operator resource
  configurations are validated *by dimension name* against the cluster
  envelope (``getattr(config, dim.name)`` for every
  :class:`~repro.cluster.cluster.ResourceDimension`), generalizing the
  ``feasible_bhj_start`` fix: a reordered or extended axis list cannot
  silently validate the wrong axis.

Callable from library code (:func:`validate_plan` raises on the first
bad plan), from ``repro plan`` (every optimized plan is checked before
being printed), and from ``repro lint --plans``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.cluster.cluster import ClusterConditions
from repro.cluster.containers import ResourceConfiguration
from repro.engine.joins import JoinAlgorithm
from repro.planner.plan import JoinNode, PlanNode, ScanNode


class PlanInvariantError(Exception):
    """Raised by :func:`validate_plan` when a plan violates invariants."""


@dataclass(frozen=True)
class PlanIssue:
    """One violated plan invariant."""

    code: str
    where: str
    message: str

    def render(self) -> str:
        """``code @ where: message`` for reports."""
        return f"{self.code} @ {self.where}: {self.message}"


def _collect_tables(node: PlanNode) -> Set[str]:
    """Base tables under ``node``, robust to cyclic/shared malformed trees.

    ``PlanNode.tables`` recurses without a visited set, so on the very
    cycles this checker exists to report it would hit the recursion
    limit before the cycle detector runs.
    """
    tables: Set[str] = set()
    seen: Set[int] = set()
    stack: List[PlanNode] = [node]
    while stack:
        current = stack.pop()
        if id(current) in seen:
            continue
        seen.add(id(current))
        if isinstance(current, ScanNode):
            if isinstance(current.table, str):
                tables.add(current.table)
        elif isinstance(current, JoinNode):
            for child in (current.left, current.right):
                if isinstance(child, PlanNode):
                    stack.append(child)
    return tables


def _describe(node: PlanNode) -> str:
    if isinstance(node, ScanNode):
        return f"Scan({node.table!r})"
    if isinstance(node, JoinNode):
        return f"Join[{getattr(node.algorithm, 'name', node.algorithm)}]"
    return type(node).__name__


def _check_resources(
    config: ResourceConfiguration,
    cluster: ClusterConditions,
    where: str,
    issues: List[PlanIssue],
) -> None:
    """Validate a per-operator configuration dimension-by-name."""
    for dim in cluster.dimensions:
        value = getattr(config, dim.name, None)
        if value is None:
            issues.append(
                PlanIssue(
                    code="missing-dimension",
                    where=where,
                    message=(
                        f"resource configuration exposes no "
                        f"'{dim.name}' dimension (has: "
                        f"{sorted(vars(config))})"
                    ),
                )
            )
        elif not dim.contains(float(value)):
            issues.append(
                PlanIssue(
                    code="dimension-out-of-envelope",
                    where=where,
                    message=(
                        f"{dim.name}={value} outside the cluster "
                        f"envelope [{dim.minimum}, {dim.maximum}]"
                    ),
                )
            )


def check_plan(
    plan: PlanNode,
    cluster: Optional[ClusterConditions] = None,
    require_resources: bool = False,
) -> List[PlanIssue]:
    """All invariant violations of ``plan`` (empty list = well-formed)."""
    issues: List[PlanIssue] = []
    seen_ids: Set[int] = set()
    seen_tables: Set[str] = set()

    def walk(node: PlanNode, on_path: Set[int], where: str) -> None:
        node_id = id(node)
        if node_id in on_path:
            issues.append(
                PlanIssue(
                    code="cycle",
                    where=where,
                    message=f"{_describe(node)} is its own ancestor",
                )
            )
            return
        if node_id in seen_ids:
            issues.append(
                PlanIssue(
                    code="shared-subtree",
                    where=where,
                    message=(
                        f"{_describe(node)} appears twice in the plan; "
                        "the operator DAG must be a tree"
                    ),
                )
            )
            return
        seen_ids.add(node_id)
        if isinstance(node, ScanNode):
            if not isinstance(node.table, str) or not node.table:
                issues.append(
                    PlanIssue(
                        code="bad-scan",
                        where=where,
                        message="scan must name a non-empty table",
                    )
                )
            elif node.table in seen_tables:
                issues.append(
                    PlanIssue(
                        code="duplicate-table",
                        where=where,
                        message=(
                            f"table {node.table!r} is scanned more "
                            "than once"
                        ),
                    )
                )
            else:
                seen_tables.add(node.table)
            return
        if not isinstance(node, JoinNode):
            issues.append(
                PlanIssue(
                    code="unknown-operator",
                    where=where,
                    message=(
                        f"{_describe(node)} is not a ScanNode/JoinNode"
                    ),
                )
            )
            return
        children = [("left", node.left), ("right", node.right)]
        for side, child in children:
            if not isinstance(child, PlanNode):
                issues.append(
                    PlanIssue(
                        code="bad-arity",
                        where=f"{where}.{side[0].upper()}",
                        message=(
                            f"join {side} child is "
                            f"{type(child).__name__}, not a PlanNode"
                        ),
                    )
                )
        if not isinstance(node.algorithm, JoinAlgorithm):
            issues.append(
                PlanIssue(
                    code="bad-algorithm",
                    where=where,
                    message=(
                        f"join algorithm {node.algorithm!r} is not a "
                        "JoinAlgorithm"
                    ),
                )
            )
        left_tables = (
            _collect_tables(node.left)
            if isinstance(node.left, PlanNode)
            else set()
        )
        right_tables = (
            _collect_tables(node.right)
            if isinstance(node.right, PlanNode)
            else set()
        )
        overlap = left_tables & right_tables
        if overlap:
            issues.append(
                PlanIssue(
                    code="overlapping-children",
                    where=where,
                    message=(
                        f"join children share tables {sorted(overlap)}"
                    ),
                )
            )
        if node.resources is not None:
            if not isinstance(node.resources, ResourceConfiguration):
                issues.append(
                    PlanIssue(
                        code="bad-resources",
                        where=where,
                        message=(
                            f"resources are {type(node.resources).__name__},"
                            " not a ResourceConfiguration"
                        ),
                    )
                )
            elif cluster is not None:
                _check_resources(node.resources, cluster, where, issues)
        elif require_resources:
            issues.append(
                PlanIssue(
                    code="missing-resources",
                    where=where,
                    message=(
                        "join carries no resource configuration but the "
                        "plan is expected to be fully resource-annotated"
                    ),
                )
            )
        for side, child in children:
            if isinstance(child, PlanNode):
                walk(
                    child,
                    on_path | {node_id},
                    f"{where}.{side[0].upper()}",
                )

    walk(plan, set(), "root")
    return issues


def validate_plan(
    plan: PlanNode,
    cluster: Optional[ClusterConditions] = None,
    require_resources: bool = False,
) -> None:
    """Raise :class:`PlanInvariantError` when ``plan`` is malformed."""
    issues = check_plan(
        plan, cluster=cluster, require_resources=require_resources
    )
    if issues:
        rendered = "\n  ".join(issue.render() for issue in issues)
        raise PlanInvariantError(
            f"plan violates {len(issues)} invariant(s):\n  {rendered}"
        )
