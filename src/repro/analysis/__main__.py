"""``python -m repro.analysis`` -- run the invariant linter.

Exit codes: 0 = clean, 1 = findings reported, 2 = usage error.
"""

import sys

from repro.analysis.cli import main

if __name__ == "__main__":
    sys.exit(main())
