"""Verification of lock-guard claims against actual ``with`` dominance.

RAQO005 *trusts* a ``# lint: guarded-by=<LOCK>`` pragma as long as a
module-level lock of that name exists.  This pass checks the claim:
every *mutation site* of the guarded binding inside a function body
must be lexically dominated by ``with <LOCK>:`` (module-level
statements are exempt -- they run once, under the import lock).  It
also audits ``lint: disable=RAQO005`` suppressions: a suppressed
mutable binding that is in fact mutated from functions without *any*
lock held is a verified thread-safety hole, not a style choice.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.framework import ModuleInfo
from repro.analysis.rules._ast_utils import dotted_name

#: Method calls that mutate the common container types.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "add",
        "update",
        "pop",
        "popitem",
        "clear",
        "setdefault",
        "extend",
        "insert",
        "remove",
        "discard",
    }
)


@dataclass(frozen=True)
class GuardViolation:
    """One unguarded mutation of a guard-claimed binding."""

    binding: str
    lock: Optional[str]  # the claimed lock; None for RAQO005 suppressions
    path: str
    line: int
    detail: str


@dataclass(frozen=True)
class _GuardClaim:
    binding: str
    lock: Optional[str]
    line: int
    #: "pragma" (guarded-by) or "suppression" (lint: disable=RAQO005).
    origin: str


def _module_guard_claims(info: ModuleInfo) -> List[_GuardClaim]:
    """Guard pragmas and RAQO005 suppressions on mutable bindings."""
    claims: List[_GuardClaim] = []
    for stmt in _binding_statements(info.tree):
        names = _bound_names(stmt)
        if not names:
            continue
        lock = info.guard_on_line(stmt.lineno)
        if lock is not None:
            for name in names:
                claims.append(
                    _GuardClaim(
                        binding=name,
                        lock=lock,
                        line=stmt.lineno,
                        origin="pragma",
                    )
                )
            continue
        suppressed = info.line_suppressions.get(stmt.lineno, set())
        if {"RAQO005", "shared-mutable-state"} & suppressed:
            for name in names:
                claims.append(
                    _GuardClaim(
                        binding=name,
                        lock=None,
                        line=stmt.lineno,
                        origin="suppression",
                    )
                )
    return claims


def _binding_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    for stmt in tree.body:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            yield stmt
        elif isinstance(stmt, ast.ClassDef):
            for member in stmt.body:
                if isinstance(member, (ast.Assign, ast.AnnAssign)):
                    yield member


def _bound_names(stmt: ast.stmt) -> List[str]:
    targets: List[ast.expr]
    if isinstance(stmt, ast.Assign):
        targets = stmt.targets
    elif isinstance(stmt, ast.AnnAssign):
        targets = [stmt.target]
    else:  # pragma: no cover - filtered by caller
        return []
    return [t.id for t in targets if isinstance(t, ast.Name)]


def verify_guards(info: ModuleInfo) -> List[GuardViolation]:
    """All guard violations in one module."""
    claims = _module_guard_claims(info)
    if not claims:
        return []
    violations: List[GuardViolation] = []
    path = str(info.path)
    mutations = _function_mutations(info)
    for claim in claims:
        sites = mutations.get(claim.binding, [])
        if claim.origin == "pragma":
            assert claim.lock is not None
            for line, detail, held in sites:
                if claim.lock not in held:
                    violations.append(
                        GuardViolation(
                            binding=claim.binding,
                            lock=claim.lock,
                            path=path,
                            line=line,
                            detail=detail,
                        )
                    )
        else:
            # A RAQO005 suppression claims thread safety without a
            # lock.  If the binding is mutated from function bodies
            # with no lock held at all, the claim is refuted.
            unguarded = [
                (line, detail)
                for line, detail, held in sites
                if not held
            ]
            if sites and len(unguarded) == len(sites):
                line, detail = unguarded[0]
                violations.append(
                    GuardViolation(
                        binding=claim.binding,
                        lock=None,
                        path=path,
                        line=line,
                        detail=detail,
                    )
                )
    return sorted(
        violations, key=lambda v: (v.line, v.binding, v.detail)
    )


def _function_mutations(
    info: ModuleInfo,
) -> "dict[str, List[Tuple[int, str, Set[str]]]]":
    """binding name -> [(line, detail, locks-held)] mutation sites.

    Only mutations inside function bodies count; module-level
    initialization runs once at import time.  Mutations of a *local*
    variable that merely shadows the module binding (a parameter or an
    in-function rebinding, without ``global``) are skipped.
    """
    sites: "dict[str, List[Tuple[int, str, Set[str]]]]" = {}
    for function in _all_functions(info.tree):
        locals_bound = _local_names(function)
        _walk_function(function, locals_bound, sites)
    return sites


def _all_functions(tree: ast.Module) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _local_names(function: ast.AST) -> Set[str]:
    """Names the function binds locally (minus ``global`` escapes)."""
    local: Set[str] = set()
    globals_declared: Set[str] = set()
    args = function.args  # type: ignore[attr-defined]
    for arg in [
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *filter(None, (args.vararg, args.kwarg)),
    ]:
        local.add(arg.arg)
    for node in ast.walk(function):
        if node is function:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue  # nested functions have their own scope
        if isinstance(node, ast.Global):
            globals_declared.update(node.names)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    local.add(target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if isinstance(node.target, ast.Name):
                local.add(node.target.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.optional_vars, ast.Name):
                    local.add(item.optional_vars.id)
    return local - globals_declared


def _walk_function(
    function: ast.AST,
    locals_bound: Set[str],
    sites: "dict[str, List[Tuple[int, str, Set[str]]]]",
) -> None:
    def held_locks(stack: List[ast.AST]) -> Set[str]:
        held: Set[str] = set()
        for with_node in stack:
            for item in with_node.items:  # type: ignore[attr-defined]
                name = dotted_name(item.context_expr)
                if name is None and isinstance(
                    item.context_expr, ast.Call
                ):
                    name = dotted_name(item.context_expr.func)
                if name is not None:
                    held.add(name.rsplit(".", 1)[-1])
                    held.add(name)
        return held

    def visit(node: ast.AST, stack: List[ast.AST]) -> None:
        if node is not function and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            return  # handled by its own _walk_function pass
        if isinstance(node, (ast.With, ast.AsyncWith)):
            stack = stack + [node]
        target = _mutation_target(node)
        if target is not None and target[0] not in locals_bound:
            sites.setdefault(target[0], []).append(
                (
                    getattr(node, "lineno", 1),
                    target[1],
                    held_locks(stack),
                )
            )
        for child in ast.iter_child_nodes(node):
            visit(child, stack)

    visit(function, [])


def _mutation_target(node: ast.AST) -> Optional[Tuple[str, str]]:
    """(binding, detail) when ``node`` mutates a module-level name."""
    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ):
                return (
                    target.value.id,
                    f"{target.value.id}[...] assignment",
                )
            if isinstance(target, ast.Name) and isinstance(
                node, ast.Assign
            ):
                # Rebinds only count when the name escapes via
                # ``global`` -- locally-shadowed names are filtered by
                # the caller's local-scope table.
                return (target.id, f"rebinding of {target.id}")
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            if isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ):
                return (
                    target.value.id,
                    f"del {target.value.id}[...]",
                )
    elif isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.attr in _MUTATOR_METHODS
        ):
            return (func.value.id, f"{func.value.id}.{func.attr}(...)")
    return None
