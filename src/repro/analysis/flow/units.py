"""A lightweight abstract interpreter over physical units.

The cost model multiplies gigabytes, rows, seconds, containers and
dollars across ~10 modules; nothing in the type system stops
``seconds + gigabytes``.  Units are declared through the annotated
``NewType``s of :mod:`repro.core.units` (``Seconds``, ``GB``, ``Rows``,
``Dollars``, ``Containers``); this pass abstractly evaluates the bodies
of every function that mentions at least one unit annotation and flags:

- ``+``/``-`` between operands of *different known* dimensions;
- comparisons between different known dimensions;
- returning a known dimension that contradicts the annotated return;
- assigning a known dimension to a variable annotated otherwise.

The domain is deliberately forgiving: anything unknown stays unknown
and propagates silently (no finding), bare numeric literals are
unit-polymorphic in ``+``/``-`` and dimensionless scale factors in
``*``/``/``, and an explicit ``Seconds(...)``/``GB(...)`` constructor
is a sanctioned cast.  Multiplication and division combine dimension
exponents, so ``GB / Seconds`` is a distinct derived unit and
``gb_per_s * time_s`` correctly recovers ``GB``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.analysis.framework import ModuleInfo
from repro.analysis.flow.symbols import FunctionInfo, ProjectModel
from repro.analysis.rules._ast_utils import dotted_name

#: Unit annotation name -> dimension-exponent vector.
UNIT_TYPES: Mapping[str, Mapping[str, int]] = {
    "Seconds": {"s": 1},
    "GB": {"gb": 1},
    "Rows": {"rows": 1},
    "Dollars": {"usd": 1},
    "Containers": {"containers": 1},
    "DollarsPerHour": {"usd": 1, "s": -1},
    "GBSeconds": {"gb": 1, "s": 1},
}

#: Builtins that preserve the unit of their first argument.
_UNIT_PRESERVING = frozenset({"min", "max", "abs", "round", "sorted"})


@dataclass(frozen=True)
class Unit:
    """A dimension-exponent vector (frozen, hashable, canonical)."""

    dims: Tuple[Tuple[str, int], ...]

    @classmethod
    def of(cls, mapping: Mapping[str, int]) -> "Unit":
        return cls(
            dims=tuple(
                sorted((d, e) for d, e in mapping.items() if e != 0)
            )
        )

    def combine(self, other: "Unit", sign: int) -> "Unit":
        merged = dict(self.dims)
        for dim, exp in other.dims:
            merged[dim] = merged.get(dim, 0) + sign * exp
        return Unit.of(merged)

    def scale_exponents(self, factor: int) -> "Unit":
        return Unit.of({d: e * factor for d, e in self.dims})

    @property
    def dimensionless(self) -> bool:
        return not self.dims

    def render(self) -> str:
        if not self.dims:
            return "dimensionless"
        num = [
            d if e == 1 else f"{d}^{e}" for d, e in self.dims if e > 0
        ]
        den = [
            d if e == -1 else f"{d}^{-e}" for d, e in self.dims if e < 0
        ]
        if not num:
            return "1/" + "*".join(den)
        rendered = "*".join(num)
        if den:
            rendered += "/" + "*".join(den)
        return rendered


DIMENSIONLESS = Unit.of({})


@dataclass(frozen=True)
class UnitIssue:
    """One unit-incoherent operation."""

    path: str
    line: int
    col: int
    message: str


def annotation_unit(annotation: Optional[ast.expr]) -> Optional[Unit]:
    """The unit a type annotation declares, if any."""
    if annotation is None:
        return None
    node: ast.expr = annotation
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    name = dotted_name(node)
    if name is None:
        return None
    terminal = name.rsplit(".", 1)[-1]
    mapping = UNIT_TYPES.get(terminal)
    return Unit.of(mapping) if mapping is not None else None


class UnitChecker:
    """Per-function abstract interpretation of unit flow."""

    def __init__(self, model: ProjectModel) -> None:
        self.model = model
        #: function qualname -> declared return unit (for call results).
        self._return_units: Dict[str, Optional[Unit]] = {}
        for qualname, fn in model.functions.items():
            self._return_units[qualname] = annotation_unit(
                fn.node.returns
            )

    # ------------------------------------------------------------------

    def check_module(self, info: ModuleInfo) -> List[UnitIssue]:
        issues: List[UnitIssue] = []
        path = str(info.path)
        for fn in self.model.functions.values():
            if str(fn.module.path) != path:
                continue
            if not self._mentions_units(fn):
                continue
            issues.extend(self._check_function(fn))
        return sorted(issues, key=lambda i: (i.line, i.col, i.message))

    def _mentions_units(self, fn: FunctionInfo) -> bool:
        args = fn.node.args
        annotations = [
            arg.annotation
            for arg in [
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
            ]
        ]
        annotations.append(fn.node.returns)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.AnnAssign):
                annotations.append(node.annotation)
        return any(
            annotation_unit(a) is not None for a in annotations if a
        )

    # ------------------------------------------------------------------

    def _check_function(self, fn: FunctionInfo) -> Iterator[UnitIssue]:
        env: Dict[str, Unit] = {}
        args = fn.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            unit = annotation_unit(arg.annotation)
            if unit is not None:
                env[arg.arg] = unit
        issues: List[UnitIssue] = []
        return_unit = annotation_unit(fn.node.returns)
        path = str(fn.module.path)

        def report(node: ast.AST, message: str) -> None:
            issues.append(
                UnitIssue(
                    path=path,
                    line=getattr(node, "lineno", fn.line),
                    col=getattr(node, "col_offset", 0) + 1,
                    message=message,
                )
            )

        def eval_expr(node: ast.expr) -> Optional[Unit]:
            if isinstance(node, ast.Name):
                return env.get(node.id)
            if isinstance(node, ast.Constant):
                return None  # literals are unit-polymorphic
            if isinstance(node, ast.UnaryOp):
                return eval_expr(node.operand)
            if isinstance(node, ast.IfExp):
                body = eval_expr(node.body)
                orelse = eval_expr(node.orelse)
                return body if body is not None else orelse
            if isinstance(node, ast.Attribute):
                return self._attribute_unit(fn, node, env)
            if isinstance(node, ast.BinOp):
                return eval_binop(node)
            if isinstance(node, ast.Call):
                return eval_call(node)
            if isinstance(node, ast.Compare):
                check_compare(node)
                return None
            return None

        def eval_binop(node: ast.BinOp) -> Optional[Unit]:
            left = eval_expr(node.left)
            right = eval_expr(node.right)
            if isinstance(node.op, (ast.Add, ast.Sub)):
                if (
                    left is not None
                    and right is not None
                    and left != right
                ):
                    op = "+" if isinstance(node.op, ast.Add) else "-"
                    report(
                        node,
                        f"unit mismatch: '{left.render()}' "
                        f"{op} '{right.render()}'",
                    )
                    return left
                return left if left is not None else right
            if isinstance(node.op, ast.Mult):
                if left is None and right is None:
                    return None
                if left is None and _is_numeric_literal(node.left):
                    return right
                if right is None and _is_numeric_literal(node.right):
                    return left
                if left is None or right is None:
                    return None
                return left.combine(right, sign=1)
            if isinstance(node.op, ast.Div):
                if left is None and right is None:
                    return None
                if right is None and _is_numeric_literal(node.right):
                    return left
                if left is None and _is_numeric_literal(node.left):
                    return (
                        right.scale_exponents(-1)
                        if right is not None
                        else None
                    )
                if left is None or right is None:
                    return None
                return left.combine(right, sign=-1)
            if isinstance(node.op, ast.Pow):
                if (
                    left is not None
                    and isinstance(node.right, ast.Constant)
                    and isinstance(node.right.value, int)
                ):
                    return left.scale_exponents(node.right.value)
                return None
            return None

        def eval_call(node: ast.Call) -> Optional[Unit]:
            name = dotted_name(node.func)
            if name is None:
                return None
            terminal = name.rsplit(".", 1)[-1]
            # Explicit unit cast: Seconds(x) is the sanctioned
            # conversion point, whatever x's inferred unit is.
            if terminal in UNIT_TYPES and len(name.split(".")) <= 2:
                for arg in node.args:
                    eval_expr(arg)  # still surface mismatches inside
                return Unit.of(UNIT_TYPES[terminal])
            if terminal in _UNIT_PRESERVING:
                units = [eval_expr(arg) for arg in node.args]
                known = [u for u in units if u is not None]
                if known and all(u == known[0] for u in known):
                    return known[0]
                if len(known) > 1:
                    report(
                        node,
                        f"unit mismatch: '{terminal}()' mixes "
                        + " and ".join(
                            sorted({u.render() for u in known})
                        ),
                    )
                return None
            for arg in node.args:
                eval_expr(arg)
            for keyword in node.keywords:
                eval_expr(keyword.value)
            resolved = self.model.resolve(fn.module_key, name)
            if resolved is None and isinstance(node.func, ast.Attribute):
                # Dynamic receiver: adopt the return unit when every
                # known method of that name agrees on one.
                candidates = {
                    self._return_units.get(q)
                    for q in self.model.methods_by_name.get(
                        terminal, ()
                    )
                }
                if len(candidates) == 1:
                    return next(iter(candidates))
                return None
            if resolved is not None:
                return self._return_units.get(resolved)
            return None

        def check_compare(node: ast.Compare) -> None:
            operands = [node.left, *node.comparators]
            units = [eval_expr(operand) for operand in operands]
            known = [
                (u, operand)
                for u, operand in zip(units, operands)
                if u is not None
            ]
            for (left_u, _), (right_u, _) in zip(known, known[1:]):
                if left_u != right_u:
                    report(
                        node,
                        f"unit mismatch: comparing "
                        f"'{left_u.render()}' with "
                        f"'{right_u.render()}'",
                    )

        def visit(node: ast.AST) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not fn.node:
                    return  # nested functions are checked separately
            if isinstance(node, ast.Assign):
                unit = eval_expr(node.value)
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        if unit is not None:
                            env[target.id] = unit
                        else:
                            env.pop(target.id, None)
                return
            if isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                declared = annotation_unit(node.annotation)
                inferred = (
                    eval_expr(node.value)
                    if node.value is not None
                    else None
                )
                if (
                    declared is not None
                    and inferred is not None
                    and declared != inferred
                ):
                    report(
                        node,
                        f"unit mismatch: '{node.target.id}' is "
                        f"declared '{declared.render()}' but assigned "
                        f"'{inferred.render()}'",
                    )
                if declared is not None:
                    env[node.target.id] = declared
                elif inferred is not None:
                    env[node.target.id] = inferred
                return
            if isinstance(node, ast.AugAssign) and isinstance(
                node.target, ast.Name
            ):
                synthetic = ast.BinOp(
                    left=ast.Name(id=node.target.id, ctx=ast.Load()),
                    op=node.op,
                    right=node.value,
                )
                ast.copy_location(synthetic, node)
                ast.fix_missing_locations(synthetic)
                unit = eval_binop(synthetic)
                if unit is not None:
                    env[node.target.id] = unit
                return
            if isinstance(node, ast.Return) and node.value is not None:
                inferred = eval_expr(node.value)
                if (
                    return_unit is not None
                    and inferred is not None
                    and inferred != return_unit
                ):
                    report(
                        node,
                        f"unit mismatch: returns "
                        f"'{inferred.render()}' but is annotated "
                        f"'{return_unit.render()}'",
                    )
                return
            if isinstance(node, ast.expr):
                eval_expr(node)
                return
            for child in ast.iter_child_nodes(node):
                visit(child)

        for stmt in fn.node.body:
            visit(stmt)
        yield from issues

    def _attribute_unit(
        self,
        fn: FunctionInfo,
        node: ast.Attribute,
        env: Dict[str, Unit],
    ) -> Optional[Unit]:
        """Unit of ``receiver.attr`` via known class field annotations."""
        if not isinstance(node.value, ast.Name):
            return None
        receiver_class: Optional[str] = None
        base = node.value.id
        if fn.class_qualname is not None:
            args = fn.node.args
            positional = [*args.posonlyargs, *args.args]
            if positional and base == positional[0].arg:
                receiver_class = fn.class_qualname
        if receiver_class is None:
            annotation = self._param_annotation(fn, base)
            receiver_class = self.model.resolve_annotation_class(
                fn.module_key, annotation
            )
        if receiver_class is None:
            return None
        seen = set()
        current: Optional[str] = receiver_class
        while current is not None and current not in seen:
            seen.add(current)
            cls = self.model.classes.get(current)
            if cls is None:
                return None
            annotation = cls.field_annotations.get(node.attr)
            if annotation is None:
                annotation = cls.init_param_fields.get(node.attr)
            if annotation is not None:
                return annotation_unit(annotation)
            current = None
            for base_name in cls.base_names:
                resolved = self.model.resolve(cls.module_key, base_name)
                if resolved in self.model.classes:
                    current = resolved
                    break
        return None

    @staticmethod
    def _param_annotation(
        fn: FunctionInfo, name: str
    ) -> Optional[ast.expr]:
        args = fn.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.arg == name:
                return arg.annotation
        return None


def _is_numeric_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float))
    if isinstance(node, ast.UnaryOp):
        return _is_numeric_literal(node.operand)
    return False
