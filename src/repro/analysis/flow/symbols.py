"""Project-wide symbol table and call graph.

Every analyzed module contributes its functions, methods and classes to
one :class:`ProjectModel`.  Call edges are resolved module-qualified:

- bare names through the module's import/alias bindings, following
  package ``__init__`` re-export chains (``from repro.core import
  RaqoPlanner`` resolves to ``repro.core.raqo.RaqoPlanner``);
- ``self.method()`` / ``cls.method()`` through the enclosing class and
  its (known) bases;
- attribute calls on *typed* receivers -- parameters and locals whose
  class is statically known from annotations or ``x = ClassName(...)``
  assignments;
- ``ClassName(...)`` instantiation to ``ClassName.__init__``;
- ``super().method()`` to the first known base;
- ``self.attr`` access to ``@property`` getters (properties execute);
- nested ``def``/``lambda`` closures via a definition edge from the
  enclosing function (a closure usually runs on behalf of its owner,
  e.g. handed to a pool);
- everything else falls back *conservatively*: an attribute call on an
  unknown receiver links to every known method of that name, so taint
  never silently stops at a dynamic dispatch site.

Standalone files outside any package (test fixtures) participate under
their file stem, so the flow rules can be exercised on snippets.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.framework import ModuleInfo
from repro.analysis.rules._ast_utils import dotted_name

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Resolution depth bound for re-export chains (guards against cycles).
_MAX_RESOLVE_DEPTH = 12

#: Dunder methods excluded from the dynamic-dispatch fallback (their
#: names are too generic to imply a project-internal callee).
_DYNAMIC_FALLBACK_EXCLUDED = frozenset(
    {"__init__", "__post_init__", "__enter__", "__exit__"}
)


@dataclass(frozen=True)
class CallEdge:
    """One resolved call: ``caller`` may execute ``callee``."""

    caller: str
    callee: str
    line: int
    #: "direct" (resolved name), "method" (typed receiver / self),
    #: "init" (instantiation), "closure" (nested def), "property"
    #: (attribute access running a getter), or "dynamic" (conservative
    #: by-name fallback).
    kind: str


@dataclass
class FunctionInfo:
    """One function or method in the project."""

    qualname: str
    name: str
    module: ModuleInfo
    module_key: str
    node: FunctionNode
    #: Qualified name of the owning class for methods; None otherwise.
    class_qualname: Optional[str] = None

    @property
    def line(self) -> int:
        return self.node.lineno

    @property
    def end_line(self) -> int:
        return getattr(self.node, "end_lineno", self.node.lineno)

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_") or self.name == "__init__"

    def decorator_names(self) -> List[str]:
        """Dotted names of this function's decorators (best effort)."""
        names = []
        for dec in self.node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            name = dotted_name(target)
            if name is not None:
                names.append(name)
        return names


@dataclass
class ClassInfo:
    """One class: its methods, bases, and attribute declarations."""

    qualname: str
    name: str
    module: ModuleInfo
    module_key: str
    node: ast.ClassDef
    #: method name -> function qualname.
    methods: Dict[str, str] = field(default_factory=dict)
    #: Raw dotted base-class names as written in the source.
    base_names: List[str] = field(default_factory=list)
    #: Attribute annotations: class-body ``x: T`` and ``__init__``-body
    #: ``self.x: T``; attr name -> annotation expression.
    field_annotations: Dict[str, ast.expr] = field(default_factory=dict)
    #: ``__init__``-body ``self.x = <expr>`` value expressions.
    init_assignments: Dict[str, ast.expr] = field(default_factory=dict)
    #: ``__init__`` parameter annotations feeding ``self.x = param``.
    init_param_fields: Dict[str, ast.expr] = field(default_factory=dict)

    def has_custom_reduce(self) -> bool:
        """True when the class customises pickling."""
        return bool(
            {"__reduce__", "__reduce_ex__", "__getstate__"}
            & set(self.methods)
        )


def module_key_of(info: ModuleInfo) -> str:
    """The dotted name a module contributes symbols under.

    Package modules use their real dotted name; standalone files use
    their stem so fixtures get readable qualnames.
    """
    if info.module is not None:
        return info.module
    return info.path.stem


class ProjectModel:
    """Symbol table + call graph over one set of analyzed modules."""

    def __init__(self) -> None:
        self.modules: List[ModuleInfo] = []
        #: module key -> ModuleInfo.
        self.module_table: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: module key -> local binding name -> absolute dotted target.
        self.bindings: Dict[str, Dict[str, str]] = {}
        self.edges: Dict[str, List[CallEdge]] = {}
        self.reverse_edges: Dict[str, List[CallEdge]] = {}
        #: method name -> sorted method qualnames (dynamic fallback).
        self.methods_by_name: Dict[str, List[str]] = {}
        #: module path -> [(start, end, qualname)] for line lookup.
        self._spans: Dict[str, List[Tuple[int, int, str]]] = {}
        #: Derived analyses (taint/units/pickles) memoized per model so
        #: every flow rule shares one instance per session.
        self.analysis_cache: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, modules: Iterable[ModuleInfo]) -> "ProjectModel":
        model = cls()
        model.modules = list(modules)
        for info in model.modules:
            key = module_key_of(info)
            # First stem wins on (unlikely) standalone-name collisions;
            # later files fall back to their full path as the key.
            if key in model.module_table:
                key = str(info.path)
            model.module_table[key] = info
            model._collect_symbols(info, key)
        for info in model.modules:
            key = model._key_for(info)
            model._collect_bindings(info, key)
        for function in list(model.functions.values()):
            model._collect_edges(function)
        for edges in model.edges.values():
            for edge in edges:
                self_list = model.reverse_edges.setdefault(edge.callee, [])
                self_list.append(edge)
        return model

    def _key_for(self, info: ModuleInfo) -> str:
        for key, candidate in self.module_table.items():
            if candidate is info:
                return key
        raise KeyError(str(info.path))  # pragma: no cover

    def _collect_symbols(self, info: ModuleInfo, key: str) -> None:
        self._spans.setdefault(str(info.path), [])

        def add_function(
            node: FunctionNode,
            qualname: str,
            class_qualname: Optional[str],
        ) -> FunctionInfo:
            fn = FunctionInfo(
                qualname=qualname,
                name=node.name,
                module=info,
                module_key=key,
                node=node,
                class_qualname=class_qualname,
            )
            self.functions[qualname] = fn
            self._spans[str(info.path)].append(
                (fn.line, fn.end_line, qualname)
            )
            if class_qualname is not None and not node.name.startswith(
                "__"
            ):
                self.methods_by_name.setdefault(node.name, []).append(
                    qualname
                )
            return fn

        def visit_body(
            body: Sequence[ast.stmt],
            prefix: str,
            class_qualname: Optional[str],
        ) -> None:
            for stmt in body:
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    qualname = f"{prefix}.{stmt.name}"
                    add_function(stmt, qualname, class_qualname)
                    visit_body(
                        stmt.body, f"{qualname}.<locals>", None
                    )
                elif isinstance(stmt, ast.ClassDef):
                    cls_qualname = f"{prefix}.{stmt.name}"
                    cls_info = ClassInfo(
                        qualname=cls_qualname,
                        name=stmt.name,
                        module=info,
                        module_key=key,
                        node=stmt,
                    )
                    cls_info.base_names = [
                        name
                        for name in (
                            dotted_name(base) for base in stmt.bases
                        )
                        if name is not None
                    ]
                    self.classes[cls_qualname] = cls_info
                    for member in stmt.body:
                        if isinstance(
                            member,
                            (ast.FunctionDef, ast.AsyncFunctionDef),
                        ):
                            method_qualname = (
                                f"{cls_qualname}.{member.name}"
                            )
                            cls_info.methods[member.name] = (
                                method_qualname
                            )
                            add_function(
                                member, method_qualname, cls_qualname
                            )
                            visit_body(
                                member.body,
                                f"{method_qualname}.<locals>",
                                None,
                            )
                        elif isinstance(member, ast.AnnAssign):
                            if isinstance(member.target, ast.Name):
                                cls_info.field_annotations[
                                    member.target.id
                                ] = member.annotation
                    self._collect_init_fields(cls_info)
                else:
                    # Walk into if/try blocks for conditionally-defined
                    # symbols (TYPE_CHECKING guards, version gates).
                    for child_body in _nested_bodies(stmt):
                        visit_body(child_body, prefix, class_qualname)

        visit_body(info.tree.body, key, None)

    def _collect_init_fields(self, cls_info: ClassInfo) -> None:
        """Record ``self.x = ...`` state set up by ``__init__``."""
        init_name = cls_info.methods.get("__init__")
        if init_name is None:
            return
        init = self.functions.get(init_name)
        if init is None:
            return
        args = init.node.args
        positional = [*args.posonlyargs, *args.args]
        self_name = positional[0].arg if positional else "self"
        param_annotations = {
            arg.arg: arg.annotation
            for arg in [*positional, *args.kwonlyargs]
            if arg.annotation is not None
        }
        for node in ast.walk(init.node):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == self_name
                ):
                    cls_info.field_annotations.setdefault(
                        target.attr, node.annotation
                    )
            if (
                target is None
                or not isinstance(target, ast.Attribute)
                or not isinstance(target.value, ast.Name)
                or target.value.id != self_name
                or value is None
            ):
                continue
            cls_info.init_assignments.setdefault(target.attr, value)
            if isinstance(value, ast.Name):
                annotation = param_annotations.get(value.id)
                if annotation is not None:
                    cls_info.init_param_fields.setdefault(
                        target.attr, annotation
                    )

    def _collect_bindings(self, info: ModuleInfo, key: str) -> None:
        table: Dict[str, str] = {}
        # Local definitions shadow imports.
        package_parts = key.split(".")
        if info.module is not None and info.path.name != "__init__.py":
            package_parts = package_parts[:-1]
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        table[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        table.setdefault(root, root)
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base_parts = package_parts[
                        : len(package_parts) - (node.level - 1)
                    ]
                    base = ".".join(
                        base_parts
                        + ([node.module] if node.module else [])
                    )
                else:
                    base = node.module or ""
                if not base:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    table[bound] = f"{base}.{alias.name}"
        # Module-level ``alias = Name`` re-binds.
        for stmt in info.tree.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Name)
            ):
                source = stmt.value.id
                target_name = stmt.targets[0].id
                if source in table:
                    table.setdefault(target_name, table[source])
                elif f"{key}.{source}" in self.functions or (
                    f"{key}.{source}" in self.classes
                ):
                    table.setdefault(target_name, f"{key}.{source}")
        # Locally-defined symbols take precedence over any import.
        for qualname in list(self.functions) + list(self.classes):
            prefix, _, last = qualname.rpartition(".")
            if prefix == key:
                table[last] = qualname
        self.bindings[key] = table

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def resolve(
        self, module_key: str, dotted: str, _depth: int = 0
    ) -> Optional[str]:
        """Resolve a dotted name used in ``module_key`` to a qualname.

        Returns the qualified name of a known function, method, or
        class; None when the name cannot be resolved inside the
        analyzed set (builtins, third-party modules, dynamic values).
        """
        if _depth > _MAX_RESOLVE_DEPTH:
            return None
        head, _, rest = dotted.partition(".")
        target = self.bindings.get(module_key, {}).get(head)
        if target is None:
            return self._resolve_absolute(dotted, _depth + 1)
        absolute = f"{target}.{rest}" if rest else target
        return self._resolve_absolute(absolute, _depth + 1)

    def _resolve_absolute(
        self, dotted: str, depth: int
    ) -> Optional[str]:
        if depth > _MAX_RESOLVE_DEPTH:
            return None
        if dotted in self.functions:
            return dotted
        if dotted in self.classes:
            return dotted
        head, _, last = dotted.rpartition(".")
        if head in self.classes:
            return self.lookup_method(head, last)
        # Longest known module prefix, re-resolved through its bindings
        # (this is what follows ``__init__`` re-export chains).
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.module_table:
                rest = ".".join(parts[cut:])
                resolved = self.resolve(prefix, rest, depth + 1)
                if resolved is not None:
                    return resolved
                break
        return None

    def lookup_method(
        self,
        class_qualname: str,
        method: str,
        _seen: Optional[Set[str]] = None,
    ) -> Optional[str]:
        """Find ``method`` on a class or its known bases."""
        seen = _seen or set()
        if class_qualname in seen:
            return None
        seen.add(class_qualname)
        cls = self.classes.get(class_qualname)
        if cls is None:
            return None
        if method in cls.methods:
            return cls.methods[method]
        for base_name in cls.base_names:
            base = self.resolve(cls.module_key, base_name)
            if base in self.classes:
                found = self.lookup_method(base, method, seen)
                if found is not None:
                    return found
        return None

    def resolve_annotation_class(
        self, module_key: str, annotation: Optional[ast.expr]
    ) -> Optional[str]:
        """The class qualname an annotation names, when known.

        Unwraps ``Optional[T]`` / ``"T"`` string annotations one level.
        """
        if annotation is None:
            return None
        node: ast.expr = annotation
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.Subscript):
            # Optional[T] / Final[T]: resolve the (first) argument.
            inner = node.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                node = inner.elts[0]
            else:
                node = inner
        name = dotted_name(node)
        if name is None:
            return None
        resolved = self.resolve(module_key, name)
        if resolved in self.classes:
            return resolved
        return None

    def function_at(
        self, path: str, line: int
    ) -> Optional[FunctionInfo]:
        """The innermost function containing ``line`` of ``path``."""
        best: Optional[Tuple[int, str]] = None
        for start, end, qualname in self._spans.get(path, ()):
            if start <= line <= end:
                if best is None or start > best[0]:
                    best = (start, qualname)
        return self.functions.get(best[1]) if best else None

    # ------------------------------------------------------------------
    # Call graph
    # ------------------------------------------------------------------

    def _collect_edges(self, fn: FunctionInfo) -> None:
        edges: List[CallEdge] = []
        env = self._typed_locals(fn)
        self_name = self._self_param(fn)

        def add(callee: Optional[str], line: int, kind: str) -> None:
            if callee is None or callee == fn.qualname:
                return
            edges.append(
                CallEdge(
                    caller=fn.qualname,
                    callee=callee,
                    line=line,
                    kind=kind,
                )
            )

        def on_call(node: ast.Call) -> None:
            func = node.func
            # super().method()
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Call)
                and isinstance(func.value.func, ast.Name)
                and func.value.func.id == "super"
                and fn.class_qualname is not None
            ):
                cls = self.classes.get(fn.class_qualname)
                if cls is not None:
                    for base_name in cls.base_names:
                        base = self.resolve(cls.module_key, base_name)
                        if base in self.classes:
                            add(
                                self.lookup_method(base, func.attr),
                                node.lineno,
                                "method",
                            )
                            break
                return
            name = dotted_name(func)
            if name is None:
                if isinstance(func, ast.Attribute):
                    self._dynamic_edges(add, func.attr, node.lineno)
                return
            parts = name.split(".")
            if len(parts) == 1:
                local = f"{fn.qualname}.<locals>.{parts[0]}"
                if local in self.functions:
                    add(local, node.lineno, "closure")
                    return
                resolved = self.resolve(fn.module_key, parts[0])
                self._add_resolved(add, resolved, node.lineno, "direct")
                return
            base, attr = parts[0], parts[-1]
            if (
                self_name is not None
                and base == self_name
                and len(parts) == 2
                and fn.class_qualname is not None
            ):
                found = self.lookup_method(fn.class_qualname, attr)
                if found is not None:
                    add(found, node.lineno, "method")
                else:
                    self._dynamic_edges(add, attr, node.lineno)
                return
            if base in env and len(parts) == 2:
                found = self.lookup_method(env[base], attr)
                if found is not None:
                    add(found, node.lineno, "method")
                else:
                    self._dynamic_edges(add, attr, node.lineno)
                return
            resolved = self.resolve(fn.module_key, name)
            if resolved is not None:
                self._add_resolved(add, resolved, node.lineno, "direct")
            else:
                self._dynamic_edges(add, attr, node.lineno)

        def on_attribute(node: ast.Attribute) -> None:
            """Property access executes the getter."""
            receiver: Optional[str] = None
            if isinstance(node.value, ast.Name):
                if (
                    self_name is not None
                    and node.value.id == self_name
                    and fn.class_qualname is not None
                ):
                    receiver = fn.class_qualname
                else:
                    receiver = env.get(node.value.id)
            if receiver is None:
                return
            found = self.lookup_method(receiver, node.attr)
            if found is None:
                return
            method = self.functions.get(found)
            if method is not None and "property" in (
                method.decorator_names()
            ):
                add(found, node.lineno, "property")

        def walk(node: ast.AST, top: bool) -> None:
            if not top and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                # Closure definition: the nested body gets its own
                # FunctionInfo/edges; record that the owner may run it.
                local = f"{fn.qualname}.<locals>.{node.name}"
                if local in self.functions:
                    add(local, node.lineno, "closure")
                return
            if not top and isinstance(node, ast.Lambda):
                return
            if isinstance(node, ast.Call):
                on_call(node)
            elif isinstance(node, ast.Attribute):
                on_attribute(node)
            for child in ast.iter_child_nodes(node):
                walk(child, top=False)

        walk(fn.node, top=True)
        self.edges[fn.qualname] = edges

    def _add_resolved(
        self,
        add: "_AddEdge",
        resolved: Optional[str],
        line: int,
        kind: str,
    ) -> None:
        if resolved is None:
            return
        if resolved in self.classes:
            init = self.lookup_method(resolved, "__init__")
            if init is not None:
                add(init, line, "init")
        else:
            add(resolved, line, kind)

    def _dynamic_edges(
        self, add: "_AddEdge", attr: str, line: int
    ) -> None:
        """Conservative fallback: every known method named ``attr``."""
        if attr in _DYNAMIC_FALLBACK_EXCLUDED:
            return
        for qualname in self.methods_by_name.get(attr, ()):
            add(qualname, line, "dynamic")

    def _self_param(self, fn: FunctionInfo) -> Optional[str]:
        if fn.class_qualname is None:
            return None
        args = fn.node.args
        positional = [*args.posonlyargs, *args.args]
        if not positional:
            return None
        if any(
            isinstance(dec, ast.Name) and dec.id == "staticmethod"
            for dec in fn.node.decorator_list
        ):
            return None
        return positional[0].arg

    def _typed_locals(self, fn: FunctionInfo) -> Dict[str, str]:
        """Local name -> class qualname, from annotations/constructors."""
        env: Dict[str, str] = {}
        args = fn.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            cls = self.resolve_annotation_class(
                fn.module_key, arg.annotation
            )
            if cls is not None:
                env[arg.arg] = cls
        for node in ast.walk(fn.node):
            target: Optional[ast.expr] = None
            if isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                cls = self.resolve_annotation_class(
                    fn.module_key, node.annotation
                )
                if cls is not None:
                    env[node.target.id] = cls
                continue
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                value = node.value
                if isinstance(target, ast.Name) and isinstance(
                    value, ast.Call
                ):
                    name = dotted_name(value.func)
                    if name is not None:
                        resolved = self.resolve(fn.module_key, name)
                        if resolved in self.classes:
                            env[target.id] = resolved
        return env

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------

    def render_graph(self) -> str:
        """A deterministic, human-readable call-graph dump."""
        lines = [
            f"# call graph: {len(self.functions)} functions, "
            f"{sum(len(e) for e in self.edges.values())} edges"
        ]
        for caller in sorted(self.edges):
            for edge in sorted(
                self.edges[caller], key=lambda e: (e.line, e.callee)
            ):
                lines.append(
                    f"{caller} -> {edge.callee} "
                    f"[{edge.kind}] line {edge.line}"
                )
        return "\n".join(lines)


def _nested_bodies(stmt: ast.stmt) -> List[List[ast.stmt]]:
    """Statement bodies nested one level under control flow."""
    bodies: List[List[ast.stmt]] = []
    for attr in ("body", "orelse", "finalbody"):
        block = getattr(stmt, attr, None)
        if isinstance(block, list) and block and isinstance(
            block[0], ast.stmt
        ):
            bodies.append(block)
    for handler in getattr(stmt, "handlers", ()) or ():
        bodies.append(handler.body)
    return bodies


class _AddEdge:
    """Typing protocol stub for the edge-adding callback."""

    def __call__(
        self, callee: Optional[str], line: int, kind: str
    ) -> None:  # pragma: no cover - protocol only
        raise NotImplementedError
