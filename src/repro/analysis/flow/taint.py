"""Transitive nondeterminism taint over the project call graph.

*Sources* are the same facts the syntactic determinism rules detect --
wall-clock reads, unseeded RNG, ``os.environ`` lookups, set-order
iteration feeding order-sensitive consumers -- but attributed to the
*function* containing them.  The engine then propagates "may execute a
source" backwards along call edges, so a planner entry point two hops
away from a ``time.time()`` call is flagged even though no banned call
appears in its own module (the RAQO002 gap).

*Entry points* are the public functions and methods of the planner and
engine entry modules.  Standalone fixture files fail open: all their
public top-level functions count as entries so the rule can be
exercised on snippets.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.framework import ModuleInfo
from repro.analysis.flow.symbols import (
    FunctionInfo,
    ProjectModel,
    module_key_of,
)
from repro.analysis.rules._ast_utils import dotted_name, is_set_expression
from repro.analysis.rules.determinism import (
    _ALLOWED_NP_RANDOM,
    _alias_tables,
    _banned_clock_calls,
)

#: Modules whose public surface is a planner/engine entry point: the
#: paper's determinism claim is about what these can execute.
ENTRY_MODULES: Tuple[str, ...] = (
    "repro.core.raqo",
    "repro.core.resource_planner",
    "repro.core.cost_model",
    "repro.planner.selinger",
    "repro.planner.randomized",
    "repro.planner.bushy",
    "repro.engine.executor",
    "repro.engine.runtime",
)

#: Order-sensitive consumers of set iteration (mirrors RAQO003).
_ORDER_SENSITIVE = frozenset(
    {"min", "max", "next", "list", "tuple", "enumerate"}
)


@dataclass(frozen=True)
class TaintSource:
    """One nondeterminism source inside one function."""

    kind: str  # "wall-clock" | "unseeded-rng" | "environ" | "set-order"
    function: str  # qualname of the containing function
    path: str
    line: int
    detail: str  # e.g. "time.time()"


@dataclass(frozen=True)
class TaintHit:
    """A source transitively reachable from an entry point."""

    entry: str  # entry-point qualname
    source: TaintSource
    #: Call chain from the entry to the source's function (inclusive).
    chain: Tuple[str, ...]

    @property
    def hops(self) -> int:
        """Call edges between the entry and the source's function."""
        return len(self.chain) - 1


def detect_sources(model: ProjectModel) -> List[TaintSource]:
    """All per-function nondeterminism sources in the project."""
    sources: List[TaintSource] = []
    for info in model.modules:
        sources.extend(_module_sources(model, info))
    return sorted(
        sources, key=lambda s: (s.path, s.line, s.kind, s.detail)
    )


def _module_sources(
    model: ProjectModel, info: ModuleInfo
) -> Iterator[TaintSource]:
    banned_clocks = _banned_clock_calls(info.tree)
    randoms, numpys, np_randoms, rng_factories = _alias_tables(info.tree)
    environ_roots = _os_aliases(info.tree)
    path = str(info.path)

    def owner(node: ast.AST) -> Optional[str]:
        fn = model.function_at(path, getattr(node, "lineno", 0))
        return fn.qualname if fn is not None else None

    def emit(
        node: ast.AST, kind: str, detail: str
    ) -> Iterator[TaintSource]:
        function = owner(node)
        if function is None:
            return  # module-level statements run once at import time
        yield TaintSource(
            kind=kind,
            function=function,
            path=path,
            line=getattr(node, "lineno", 1),
            detail=detail,
        )

    for node in ast.walk(info.tree):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None:
                if name in banned_clocks:
                    yield from emit(node, "wall-clock", f"{name}()")
                yield from (
                    emit(node, "unseeded-rng", f"{name}()")
                    if _is_unseeded_rng(
                        name,
                        node,
                        randoms,
                        numpys,
                        np_randoms,
                        rng_factories,
                    )
                    else ()
                )
                parts = name.split(".")
                if (
                    len(parts) >= 2
                    and parts[0] in environ_roots
                    and parts[1] in ("getenv", "environ")
                ):
                    yield from emit(node, "environ", f"{name}()")
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in _ORDER_SENSITIVE
                and node.args
                and is_set_expression(node.args[0])
            ):
                yield from emit(
                    node, "set-order", f"{func.id}() over a set"
                )
        elif isinstance(node, ast.Subscript):
            name = dotted_name(node.value)
            if name is not None:
                parts = name.split(".")
                if (
                    len(parts) == 2
                    and parts[0] in environ_roots
                    and parts[1] == "environ"
                ):
                    yield from emit(node, "environ", f"{name}[...]")
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if is_set_expression(node.iter):
                yield from emit(
                    node.iter, "set-order", "for-loop over a set"
                )
        elif isinstance(
            node,
            (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
        ):
            for generator in node.generators:
                if is_set_expression(generator.iter):
                    yield from emit(
                        generator.iter,
                        "set-order",
                        "comprehension over a set",
                    )


def _os_aliases(tree: ast.Module) -> Set[str]:
    """Names bound to the ``os`` module."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "os":
                    aliases.add(alias.asname or "os")
    return aliases


def _is_unseeded_rng(
    name: str,
    node: ast.Call,
    randoms: Set[str],
    numpys: Set[str],
    np_randoms: Set[str],
    rng_factories: Set[str],
) -> bool:
    """Mirror of RAQO001's call classification (see determinism.py)."""
    parts = name.split(".")
    if (
        len(parts) == 1
        and parts[0] in rng_factories
        and not node.args
        and not node.keywords
    ):
        return True
    if len(parts) >= 2 and parts[0] in randoms:
        return True
    attr = None
    if len(parts) >= 3 and parts[0] in numpys and parts[1] == "random":
        attr = parts[2]
    elif len(parts) >= 2 and parts[0] in np_randoms:
        attr = parts[1]
    if attr is None:
        return False
    if attr not in _ALLOWED_NP_RANDOM:
        return True
    return attr == "default_rng" and not node.args and not node.keywords


def entry_points(model: ProjectModel) -> List[FunctionInfo]:
    """Planner/engine entry points, sorted by qualified name."""
    entries: List[FunctionInfo] = []
    standalone_keys = {
        module_key_of(info)
        for info in model.modules
        if info.module is None
    }
    for fn in model.functions.values():
        if "<locals>" in fn.qualname:
            continue
        if not fn.is_public:
            continue
        if fn.class_qualname is not None:
            # Methods of private classes are not entry points.
            cls = model.classes.get(fn.class_qualname)
            if cls is None or cls.name.startswith("_"):
                continue
        in_entry_module = fn.module_key in ENTRY_MODULES
        in_standalone = fn.module_key in standalone_keys
        if in_entry_module or in_standalone:
            entries.append(fn)
    return sorted(entries, key=lambda f: f.qualname)


class TaintAnalysis:
    """Reachability of nondeterminism sources from entry points."""

    def __init__(self, model: ProjectModel) -> None:
        self.model = model
        self.sources = detect_sources(model)
        self.entries = entry_points(model)
        self._hits: Optional[Dict[str, List[TaintHit]]] = None

    def hits_by_entry(self) -> Dict[str, List[TaintHit]]:
        """Transitive hits (>= 1 hop), keyed by entry qualname.

        Zero-hop reaches -- the source sits in the entry function
        itself -- are the syntactic rules' territory and are excluded.
        """
        if self._hits is not None:
            return self._hits
        hits: Dict[str, List[TaintHit]] = {}
        # One BFS per *source function*: compute, for every function,
        # the next hop toward the source along forward call edges.
        by_function: Dict[str, List[TaintSource]] = {}
        for source in self.sources:
            by_function.setdefault(source.function, []).append(source)
        entry_names = {fn.qualname for fn in self.entries}
        for source_fn, sources in sorted(by_function.items()):
            parents = self._reverse_bfs(source_fn)
            for entry in sorted(entry_names):
                if entry not in parents or entry == source_fn:
                    continue
                chain = self._chain(entry, source_fn, parents)
                if chain is None or len(chain) < 2:
                    continue
                for source in sources:
                    hits.setdefault(entry, []).append(
                        TaintHit(
                            entry=entry,
                            source=source,
                            chain=tuple(chain),
                        )
                    )
        for entry in hits:
            hits[entry].sort(
                key=lambda h: (
                    h.source.kind,
                    h.source.path,
                    h.source.line,
                    h.chain,
                )
            )
        self._hits = hits
        return hits

    def _reverse_bfs(self, source_fn: str) -> Dict[str, str]:
        """caller -> next hop toward ``source_fn`` (BFS, deterministic)."""
        parents: Dict[str, str] = {source_fn: source_fn}
        frontier = [source_fn]
        while frontier:
            next_frontier: List[str] = []
            for current in frontier:
                incoming = self.model.reverse_edges.get(current, ())
                for edge in sorted(
                    incoming, key=lambda e: (e.caller, e.line)
                ):
                    if edge.caller in parents:
                        continue
                    parents[edge.caller] = current
                    next_frontier.append(edge.caller)
            frontier = next_frontier
        return parents

    def _chain(
        self, entry: str, source_fn: str, parents: Dict[str, str]
    ) -> Optional[List[str]]:
        chain = [entry]
        current = entry
        while current != source_fn:
            current = parents[current]
            chain.append(current)
            if len(chain) > len(self.model.functions) + 1:
                return None  # pragma: no cover - cycle guard
        return chain
