"""Whole-program dataflow analyses on top of the AST rule framework.

The PR 2 rules are *syntactic* and *per-file*: RAQO002 catches a
``time.time()`` call inside a planner module, but not the same call two
hops away through a helper; RAQO005 *trusts* ``guarded-by`` pragmas
instead of verifying them.  This package closes those gaps with a
project-wide model shared by every flow rule (built once per analysis
session, see :meth:`repro.analysis.framework.AnalysisSession.flow`):

- :mod:`repro.analysis.flow.symbols` -- a module-qualified symbol
  table and call graph: functions, methods, classes, import-aware name
  resolution (including ``__init__`` re-export chains), ``self``/typed
  receiver dispatch, closures, properties, and a conservative
  every-method-of-that-name fallback for dynamic dispatch.
- :mod:`repro.analysis.flow.taint` -- transitive propagation of
  nondeterminism sources (wall-clock, unseeded RNG, ``os.environ``,
  set-order iteration) along call edges to planner/engine entry
  points (RAQO011).
- :mod:`repro.analysis.flow.locks` -- verification of every
  ``guarded-by`` pragma and RAQO005 suppression against actual
  ``with <lock>:`` dominance on the mutation sites (RAQO012).
- :mod:`repro.analysis.flow.units` -- a lightweight abstract
  interpreter over physical units (``Seconds``, ``GB``, ``Rows``,
  ``Dollars``, ``Containers`` from :mod:`repro.core.units`) flagging
  unit-incoherent arithmetic (RAQO013).
- :mod:`repro.analysis.flow.pickles` -- picklability of the state
  shipped to ``WorkloadRunner(processes=N)`` worker rebuilds
  (RAQO014).
"""

from repro.analysis.flow.symbols import (
    CallEdge,
    ClassInfo,
    FunctionInfo,
    ProjectModel,
)

__all__ = [
    "CallEdge",
    "ClassInfo",
    "FunctionInfo",
    "ProjectModel",
]
