"""Picklability of state shipped to process-pool workers.

``WorkloadRunner(processes=N)`` rebuilds planner state inside each
worker from an ``initargs`` payload, so everything in that payload
crosses a pickle boundary.  A class holding ``threading.Lock`` /
``threading.local`` state (the tracer, the model-cache guard) raises
``TypeError: cannot pickle '_thread.lock' object`` only at runtime --
and only on the multiprocessing path, which unit tests rarely take.

This pass finds the failure statically:

- *unpicklable classes*: any project class whose ``__init__`` stores a
  thread primitive (``threading.Lock()``, ``threading.local()``, ...)
  on ``self``, or stores an instance of another unpicklable class
  (transitive closure) -- unless it customises pickling via
  ``__reduce__`` / ``__reduce_ex__`` / ``__getstate__``;
- *sinks*: ``ProcessPoolExecutor(initializer=..., initargs=(payload,))``
  and ``multiprocessing.Pool(...)`` calls.  Every expression reachable
  from ``initargs`` (tuple elements, dict-literal values one level
  deep) is typed through the project symbol table; attribute chains are
  evaluated precisely, so shipping ``tracer.seed`` (an ``int`` field)
  is fine while shipping ``tracer`` itself is flagged.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.framework import ModuleInfo
from repro.analysis.flow.symbols import FunctionInfo, ProjectModel
from repro.analysis.rules._ast_utils import dotted_name

#: Constructors whose instances cannot cross a pickle boundary.
_THREAD_PRIMITIVES = frozenset(
    {
        "threading.local",
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Event",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "_thread.allocate_lock",
    }
)

#: Process-pool constructors whose ``initargs`` payload gets pickled.
_POOL_SINKS = frozenset(
    {
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
        "multiprocessing.Pool",
        "multiprocessing.pool.Pool",
    }
)


@dataclass(frozen=True)
class PickleIssue:
    """One unpicklable value shipped to a process-pool sink."""

    path: str
    line: int
    col: int
    message: str


class PickleAnalysis:
    """Unpicklable-class inference plus pool-payload checking."""

    def __init__(self, model: ProjectModel) -> None:
        self.model = model
        self._unpicklable = self._infer_unpicklable()

    @property
    def unpicklable_classes(self) -> Dict[str, str]:
        """class qualname -> human-readable reason."""
        return dict(self._unpicklable)

    # ------------------------------------------------------------------
    # Class inference
    # ------------------------------------------------------------------

    def _infer_unpicklable(self) -> Dict[str, str]:
        unpicklable: Dict[str, str] = {}
        for qualname, cls in sorted(self.model.classes.items()):
            if cls.has_custom_reduce():
                continue
            for attr, value in sorted(cls.init_assignments.items()):
                primitive = self._thread_primitive(cls.module_key, value)
                if primitive is not None:
                    unpicklable[qualname] = (
                        f"__init__ stores {primitive}() on "
                        f"self.{attr} (line {value.lineno})"
                    )
                    break
        # Transitive closure: holding an unpicklable instance makes the
        # holder unpicklable too.  Iterate to a fixed point.
        changed = True
        while changed:
            changed = False
            for qualname, cls in sorted(self.model.classes.items()):
                if qualname in unpicklable or cls.has_custom_reduce():
                    continue
                for attr, value in sorted(cls.init_assignments.items()):
                    inner = self._constructed_class(
                        cls.module_key, value
                    )
                    if inner in unpicklable:
                        inner_cls = self.model.classes[inner]
                        unpicklable[qualname] = (
                            f"__init__ stores a {inner_cls.name} on "
                            f"self.{attr}, and {inner_cls.name} is "
                            f"unpicklable ({unpicklable[inner]})"
                        )
                        changed = True
                        break
        return unpicklable

    def _thread_primitive(
        self, module_key: str, value: ast.expr
    ) -> Optional[str]:
        if not isinstance(value, ast.Call):
            return None
        name = dotted_name(value.func)
        if name is None:
            return None
        absolute = self._absolute_name(module_key, name)
        if absolute in _THREAD_PRIMITIVES:
            return absolute
        return None

    def _constructed_class(
        self, module_key: str, value: ast.expr
    ) -> Optional[str]:
        if not isinstance(value, ast.Call):
            return None
        name = dotted_name(value.func)
        if name is None:
            return None
        resolved = self.model.resolve(module_key, name)
        if resolved in self.model.classes:
            return resolved
        return None

    def _absolute_name(self, module_key: str, dotted: str) -> str:
        """Expand the leading binding without requiring a known target."""
        head, _, rest = dotted.partition(".")
        target = self.model.bindings.get(module_key, {}).get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    # ------------------------------------------------------------------
    # Sink analysis
    # ------------------------------------------------------------------

    def check_module(self, info: ModuleInfo) -> List[PickleIssue]:
        issues: List[PickleIssue] = []
        path = str(info.path)
        for fn in self.model.functions.values():
            if str(fn.module.path) != path:
                continue
            issues.extend(self._check_function(fn))
        return sorted(
            issues, key=lambda i: (i.line, i.col, i.message)
        )

    def _check_function(self, fn: FunctionInfo) -> List[PickleIssue]:
        issues: List[PickleIssue] = []
        env = self.model._typed_locals(fn)
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            absolute = self._absolute_name(fn.module_key, name)
            if absolute not in _POOL_SINKS:
                continue
            payload = None
            for keyword in node.keywords:
                if keyword.arg == "initargs":
                    payload = keyword.value
            if payload is None:
                continue
            for expr, label in self._shipped_exprs(fn, payload):
                verdict = self._expr_unpicklable(fn, expr, env)
                if verdict is None:
                    continue
                cls_name, reason = verdict
                issues.append(
                    PickleIssue(
                        path=str(fn.module.path),
                        line=getattr(expr, "lineno", node.lineno),
                        col=getattr(expr, "col_offset", 0) + 1,
                        message=(
                            f"process-pool payload entry {label} "
                            f"ships a {cls_name}, which is "
                            f"unpicklable: {reason}"
                        ),
                    )
                )
        return issues

    def _shipped_exprs(
        self, fn: FunctionInfo, payload: ast.expr
    ) -> List[Tuple[ast.expr, str]]:
        """Leaf expressions crossing the pickle boundary, with labels."""
        shipped: List[Tuple[ast.expr, str]] = []

        def expand(expr: ast.expr, label: str, depth: int) -> None:
            if isinstance(expr, (ast.Tuple, ast.List)):
                for element in expr.elts:
                    expand(element, label, depth)
                return
            if isinstance(expr, ast.Dict):
                for key, value in zip(expr.keys, expr.values):
                    entry = label
                    if isinstance(key, ast.Constant) and isinstance(
                        key.value, str
                    ):
                        entry = f"'{key.value}'"
                    expand(value, entry, depth)
                return
            if isinstance(expr, ast.Name) and depth < 3:
                # Follow one local hop: payload = {...}; initargs=(payload,)
                assigned = self._local_assignment(fn, expr.id)
                if assigned is not None and isinstance(
                    assigned, (ast.Dict, ast.Tuple, ast.List)
                ):
                    expand(assigned, label, depth + 1)
                    return
            shipped.append((expr, label))

        expand(payload, "initargs", 0)
        return shipped

    @staticmethod
    def _local_assignment(
        fn: FunctionInfo, name: str
    ) -> Optional[ast.expr]:
        found: Optional[ast.expr] = None
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == name
            ):
                found = node.value  # last assignment wins, best effort
        return found

    def _expr_unpicklable(
        self,
        fn: FunctionInfo,
        expr: ast.expr,
        env: Dict[str, str],
    ) -> Optional[Tuple[str, str]]:
        """(class name, reason) when the expression's type is unpicklable."""
        cls = self._expr_class(fn, expr, env)
        if cls is None or cls not in self._unpicklable:
            return None
        return (self.model.classes[cls].name, self._unpicklable[cls])

    def _expr_class(
        self,
        fn: FunctionInfo,
        expr: ast.expr,
        env: Dict[str, str],
    ) -> Optional[str]:
        """Static type of an expression, as a known class qualname."""
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Call):
            name = dotted_name(expr.func)
            if name is None:
                return None
            resolved = self.model.resolve(fn.module_key, name)
            if resolved in self.model.classes:
                return resolved
            if resolved in self.model.functions:
                returns = self.model.functions[resolved].node.returns
                return self.model.resolve_annotation_class(
                    self.model.functions[resolved].module_key, returns
                )
            return None
        if isinstance(expr, ast.Attribute):
            receiver = self._expr_class(fn, expr.value, env)
            if receiver is None:
                if (
                    isinstance(expr.value, ast.Name)
                    and fn.class_qualname is not None
                ):
                    args = fn.node.args
                    positional = [*args.posonlyargs, *args.args]
                    if (
                        positional
                        and expr.value.id == positional[0].arg
                    ):
                        receiver = fn.class_qualname
            if receiver is None:
                return None
            return self._field_class(receiver, expr.attr)
        return None

    def _field_class(
        self, class_qualname: str, attr: str
    ) -> Optional[str]:
        """The known class of ``<class>.<attr>``, walking bases."""
        seen = set()
        current: Optional[str] = class_qualname
        while current is not None and current not in seen:
            seen.add(current)
            cls = self.model.classes.get(current)
            if cls is None:
                return None
            annotation = cls.field_annotations.get(attr)
            if annotation is None:
                annotation = cls.init_param_fields.get(attr)
            if annotation is not None:
                return self.model.resolve_annotation_class(
                    cls.module_key, annotation
                )
            value = cls.init_assignments.get(attr)
            if value is not None:
                return self._constructed_class(cls.module_key, value)
            current = None
            for base_name in cls.base_names:
                resolved = self.model.resolve(cls.module_key, base_name)
                if resolved in self.model.classes:
                    current = resolved
                    break
        return None
