"""Static analysis for the RAQO reproduction's project invariants.

RAQO's headline results (switch-point surfaces, the 2x plan/resource
gap, cache-hit equivalence) only reproduce if the planner is
deterministic and the vectorized fast paths stay bit-identical to the
scalar reference.  Tests assert those invariants on examples; this
package *enforces* them on the source itself:

- :mod:`repro.analysis.framework` -- a small AST-based analysis
  framework: rule registry, per-module parse + suppression comments,
  an intra-package import graph for scoping rules to the code actually
  reachable from the planner or the parallel runner, and a findings
  reporter with ``file:line:col`` output.
- :mod:`repro.analysis.rules` -- the concrete passes codifying the
  project invariants (determinism, float comparisons, thread safety,
  mutable defaults, positional resource indexing, public-API typing).
- :mod:`repro.analysis.plan_checks` -- a *runtime* semantic checker for
  plan well-formedness (tree shape, operator arity, table disjointness,
  by-name resource-dimension validation), callable from the CLI and
  from library code.

Run it as ``python -m repro.analysis src`` or ``repro lint``; exit code
0 means the tree is invariant-clean, 1 means findings were reported.
"""

from repro.analysis.framework import (
    AnalysisError,
    AnalysisSession,
    Finding,
    ModuleInfo,
    Rule,
    all_rules,
    iter_python_files,
    register_rule,
    run_analysis,
)
from repro.analysis.plan_checks import (
    PlanInvariantError,
    PlanIssue,
    check_plan,
    validate_plan,
)

# Importing the rule modules registers every concrete pass.
from repro.analysis import rules as _rules  # noqa: F401  (registration)

__all__ = [
    "AnalysisError",
    "AnalysisSession",
    "Finding",
    "ModuleInfo",
    "PlanInvariantError",
    "PlanIssue",
    "Rule",
    "all_rules",
    "check_plan",
    "iter_python_files",
    "register_rule",
    "run_analysis",
    "validate_plan",
]
