"""Command-line front end for the invariant linter.

Used by ``python -m repro.analysis`` and the ``repro lint`` subcommand.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.baseline import (
    apply_baseline,
    build_baseline,
    format_stale,
    load_baseline,
    write_baseline,
)
from repro.analysis.framework import (
    AnalysisError,
    AnalysisSession,
    Finding,
    ModuleInfo,
    all_rules,
    iter_python_files,
    resolve_rules,
    run_analysis,
)
from repro.analysis.sarif import render_sarif


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (shared with ``repro lint``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST-based invariant linter for the RAQO reproduction "
            "(determinism, thread safety, plan well-formedness, typing)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        metavar="ID_OR_NAME",
        help="run only this rule (repeatable; id like RAQO001 or name "
        "like unseeded-random)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="findings output format",
    )
    parser.add_argument(
        "--no-suppress",
        action="store_true",
        help="ignore '# lint: disable' pragmas (audit mode)",
    )
    parser.add_argument(
        "--sarif",
        metavar="FILE",
        help="additionally write a SARIF 2.1.0 log to FILE ('-' for "
        "stdout)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="only fail on findings not recorded in this baseline "
        "file; stale entries are reported as warnings",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the --baseline file from the current findings "
        "(keeping existing justifications) and exit 0",
    )
    parser.add_argument(
        "--graph",
        action="store_true",
        help="dump the resolved whole-program call graph and exit",
    )
    return parser


def _render(findings: List[Finding], output_format: str) -> str:
    if output_format == "json":
        return json.dumps(
            [
                {
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "rule_id": f.rule_id,
                    "rule_name": f.rule_name,
                    "message": f.message,
                }
                for f in findings
            ],
            indent=2,
        )
    lines = [finding.render() for finding in findings]
    lines.append(
        f"\n{len(findings)} finding(s)"
        if findings
        else "invariants clean: 0 findings"
    )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            scope = (
                f" [scope: {', '.join(rule.scope_roots)}]"
                if rule.scope_roots
                else ""
            )
            print(f"{rule.id}  {rule.name}{scope}")
            print(f"    {rule.description}")
        return 0
    if args.update_baseline and not args.baseline:
        print("error: --update-baseline requires --baseline FILE")
        return 2
    try:
        if args.graph:
            files = iter_python_files(args.paths)
            session = AnalysisSession.from_modules(
                ModuleInfo.parse(path) for path in files
            )
            print(session.flow().render_graph())
            return 0
        rules = resolve_rules(args.rule)
        findings = run_analysis(
            args.paths,
            rules=rules,
            respect_suppressions=not args.no_suppress,
        )
        if args.sarif:
            sarif_text = render_sarif(findings, rules)
            if args.sarif == "-":
                print(sarif_text)
            else:
                Path(args.sarif).write_text(
                    sarif_text + "\n", encoding="utf-8"
                )
        if args.baseline:
            baseline_path = Path(args.baseline)
            previous = (
                load_baseline(baseline_path)
                if baseline_path.exists()
                else []
            )
            if args.update_baseline:
                document = build_baseline(findings, previous=previous)
                write_baseline(baseline_path, document)
                print(
                    f"baseline updated: {len(document['findings'])} "
                    f"entr{'y' if len(document['findings']) == 1 else 'ies'} "
                    f"in {baseline_path}"
                )
                return 0
            result = apply_baseline(findings, previous)
            for warning in format_stale(result.stale):
                print(f"warning: {warning}")
            if result.matched:
                print(
                    f"{len(result.matched)} finding(s) covered by "
                    f"baseline {baseline_path}"
                )
            findings = result.new
    except AnalysisError as exc:
        print(f"error: {exc}")
        return 2
    print(_render(findings, args.format))
    return 1 if findings else 0
