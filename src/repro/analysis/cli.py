"""Command-line front end for the invariant linter.

Used by ``python -m repro.analysis`` and the ``repro lint`` subcommand.
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional, Sequence

from repro.analysis.framework import (
    AnalysisError,
    Finding,
    all_rules,
    resolve_rules,
    run_analysis,
)


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (shared with ``repro lint``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST-based invariant linter for the RAQO reproduction "
            "(determinism, thread safety, plan well-formedness, typing)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        metavar="ID_OR_NAME",
        help="run only this rule (repeatable; id like RAQO001 or name "
        "like unseeded-random)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="findings output format",
    )
    parser.add_argument(
        "--no-suppress",
        action="store_true",
        help="ignore '# lint: disable' pragmas (audit mode)",
    )
    return parser


def _render(findings: List[Finding], output_format: str) -> str:
    if output_format == "json":
        return json.dumps(
            [
                {
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "rule_id": f.rule_id,
                    "rule_name": f.rule_name,
                    "message": f.message,
                }
                for f in findings
            ],
            indent=2,
        )
    lines = [finding.render() for finding in findings]
    lines.append(
        f"\n{len(findings)} finding(s)"
        if findings
        else "invariants clean: 0 findings"
    )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            scope = (
                f" [scope: {', '.join(rule.scope_roots)}]"
                if rule.scope_roots
                else ""
            )
            print(f"{rule.id}  {rule.name}{scope}")
            print(f"    {rule.description}")
        return 0
    try:
        rules = resolve_rules(args.rule)
        findings = run_analysis(
            args.paths,
            rules=rules,
            respect_suppressions=not args.no_suppress,
        )
    except AnalysisError as exc:
        print(f"error: {exc}")
        return 2
    print(_render(findings, args.format))
    return 1 if findings else 0
