"""Checked-in findings baseline: adopt the linter without a flag day.

A baseline file records the findings a team has explicitly accepted,
each with a required human justification.  ``repro lint --baseline
lint_baseline.json`` then fails only on findings *not* in the file, so
new rules can land (and start gating CI) while legacy debt is burned
down incrementally.

Identity is the fingerprint ``sha1(rule_id | relative path | message)``
-- deliberately line-independent, so unrelated edits that shift a
baselined finding up or down the file do not break the build.  Stale
entries (baselined findings that no longer occur) are reported so the
file shrinks as debt is paid off; ``--update-baseline`` rewrites the
file from the current findings, preserving existing justifications.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set

from repro.analysis.framework import AnalysisError, Finding

BASELINE_VERSION = 1
_DEFAULT_JUSTIFICATION = "TODO: justify or fix this finding"


def finding_fingerprint(
    finding: Finding, base_dir: Optional[Path] = None
) -> str:
    """Stable, line-independent identity of one finding."""
    base = (base_dir or Path.cwd()).resolve()
    path = Path(finding.path).resolve()
    try:
        relative = path.relative_to(base).as_posix()
    except ValueError:
        relative = path.as_posix()
    payload = f"{finding.rule_id}|{relative}|{finding.message}"
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding."""

    fingerprint: str
    rule_id: str
    path: str
    message: str
    justification: str


@dataclass
class BaselineResult:
    """Outcome of filtering findings through a baseline."""

    #: Findings not covered by the baseline (these fail the build).
    new: List[Finding]
    #: Findings matched (and silenced) by a baseline entry.
    matched: List[Finding]
    #: Entries whose finding no longer occurs (remove them).
    stale: List[BaselineEntry]


def load_baseline(path: Path) -> List[BaselineEntry]:
    """Parse a baseline file, validating its structure."""
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise AnalysisError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise AnalysisError(
            f"baseline {path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(raw, dict) or raw.get("version") != BASELINE_VERSION:
        raise AnalysisError(
            f"baseline {path} must be an object with version="
            f"{BASELINE_VERSION}"
        )
    findings = raw.get("findings")
    if not isinstance(findings, list):
        raise AnalysisError(f"baseline {path}: 'findings' must be a list")
    entries: List[BaselineEntry] = []
    for i, item in enumerate(findings):
        if not isinstance(item, dict):
            raise AnalysisError(
                f"baseline {path}: findings[{i}] must be an object"
            )
        for key in ("fingerprint", "rule_id", "path", "message"):
            if not isinstance(item.get(key), str) or not item[key]:
                raise AnalysisError(
                    f"baseline {path}: findings[{i}].{key} must be a "
                    "non-empty string"
                )
        entries.append(
            BaselineEntry(
                fingerprint=item["fingerprint"],
                rule_id=item["rule_id"],
                path=item["path"],
                message=item["message"],
                justification=str(
                    item.get("justification", _DEFAULT_JUSTIFICATION)
                ),
            )
        )
    return entries


def apply_baseline(
    findings: Sequence[Finding],
    entries: Sequence[BaselineEntry],
    base_dir: Optional[Path] = None,
) -> BaselineResult:
    """Split findings into new vs baselined, and spot stale entries."""
    by_fingerprint: Dict[str, BaselineEntry] = {
        entry.fingerprint: entry for entry in entries
    }
    new: List[Finding] = []
    matched: List[Finding] = []
    seen: Set[str] = set()
    for finding in findings:
        fingerprint = finding_fingerprint(finding, base_dir)
        if fingerprint in by_fingerprint:
            matched.append(finding)
            seen.add(fingerprint)
        else:
            new.append(finding)
    stale = [
        entry
        for fingerprint, entry in sorted(by_fingerprint.items())
        if fingerprint not in seen
    ]
    return BaselineResult(new=new, matched=matched, stale=stale)


def build_baseline(
    findings: Sequence[Finding],
    previous: Sequence[BaselineEntry] = (),
    base_dir: Optional[Path] = None,
) -> Dict[str, Any]:
    """The baseline document for the current findings.

    Justifications from ``previous`` entries are carried over for
    findings that persist; genuinely new entries get a TODO marker a
    human must replace.
    """
    base = (base_dir or Path.cwd()).resolve()
    carried = {entry.fingerprint: entry.justification for entry in previous}
    items: List[Dict[str, str]] = []
    for finding in sorted(set(findings)):
        fingerprint = finding_fingerprint(finding, base)
        path = Path(finding.path).resolve()
        try:
            relative = path.relative_to(base).as_posix()
        except ValueError:
            relative = path.as_posix()
        items.append(
            {
                "fingerprint": fingerprint,
                "rule_id": finding.rule_id,
                "path": relative,
                "message": finding.message,
                "justification": carried.get(
                    fingerprint, _DEFAULT_JUSTIFICATION
                ),
            }
        )
    # One entry per fingerprint even if a finding repeats on several
    # lines: the fingerprint is line-independent by design.
    unique: Dict[str, Dict[str, str]] = {}
    for item in items:
        unique.setdefault(item["fingerprint"], item)
    return {
        "version": BASELINE_VERSION,
        "findings": sorted(
            unique.values(),
            key=lambda e: (e["path"], e["rule_id"], e["message"]),
        ),
    }


def write_baseline(path: Path, document: Dict[str, Any]) -> None:
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def format_stale(stale: Sequence[BaselineEntry]) -> List[str]:
    """Human-readable warnings for entries that no longer fire."""
    return [
        f"stale baseline entry: {entry.rule_id} at {entry.path} "
        f"({entry.message[:60]}...)"
        if len(entry.message) > 60
        else f"stale baseline entry: {entry.rule_id} at {entry.path} "
        f"({entry.message})"
        for entry in stale
    ]
