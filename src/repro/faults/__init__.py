"""Deterministic fault injection for the simulated cluster.

RAQO's premise is that plans run on *shared, volatile* cloud resources:
containers get preempted, tasks OOM, and stragglers appear (the paper's
Fig 1 queueing analysis and the BHJ feasibility walls of Figs 3/4 only
matter because clusters misbehave). This package turns that volatility
into a first-class, fully deterministic simulation input:

- :class:`~repro.faults.model.FaultSpec` declares fault *rates* (container
  preemption, task OOM kill, straggler slowdown) plus a seed;
- :class:`~repro.faults.model.FaultPlan` converts the spec into
  per-(stage, attempt) decisions that are a pure function of
  ``(seed, stage_key, attempt)`` -- never of draw order -- so serial and
  parallel executions of the same workload observe identical faults;
- :class:`~repro.faults.recovery.RecoveryPolicy` says how the engine
  reacts: capped retries with exponential simulated-time backoff,
  speculative re-execution of stragglers, and graceful BHJ -> SMJ
  degradation instead of failing the query;
- :func:`~repro.faults.injection.run_stage_with_faults` is the shared
  attempt loop both the batch executor and the adaptive runtime thread
  their stages through.

Everything is seeded (``numpy.random.default_rng``; RAQO001-clean) and
free of shared mutable state (RAQO005-clean), so fault-injected runs are
bit-reproducible and safe under the parallel workload runner.
"""

from repro.faults.injection import StageFaultOutcome, run_stage_with_faults
from repro.faults.model import (
    AttemptRecord,
    FaultDecision,
    FaultError,
    FaultKind,
    FaultPlan,
    FaultSpec,
    NO_FAULT,
    ZERO_FAULTS,
    stage_key_for_join,
)
from repro.faults.recovery import DEFAULT_RECOVERY, RecoveryPolicy

__all__ = [
    "AttemptRecord",
    "DEFAULT_RECOVERY",
    "FaultDecision",
    "FaultError",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "NO_FAULT",
    "RecoveryPolicy",
    "StageFaultOutcome",
    "ZERO_FAULTS",
    "run_stage_with_faults",
    "stage_key_for_join",
]
