"""Fault model: kinds, rate specs, and deterministic fault plans.

The core determinism contract lives in :meth:`FaultPlan.decide`: the
decision for a stage attempt is a pure function of ``(seed, stage_key,
attempt)``. The RNG for each decision is derived by hashing that triple
(SHA-256, stable across processes and platforms -- unlike ``hash()``,
which is salted per process), so fault outcomes do not depend on the
order in which stages execute. That is what makes the same seeded
workload produce bit-identical reports under the serial and the parallel
:class:`~repro.workloads.runner.WorkloadRunner`.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Iterable, Optional

import numpy as np

from repro.engine.joins import JoinAlgorithm


class FaultError(Exception):
    """Raised for invalid fault specifications."""


class FaultKind(enum.Enum):
    """The three fault classes the simulator injects."""

    #: The stage's containers are reclaimed mid-run; work is lost.
    PREEMPTION = "preemption"
    #: A task is killed for exceeding its memory budget.
    OOM_KILL = "oom_kill"
    #: The stage completes, but slower than modelled (skewed/slow node).
    STRAGGLER = "straggler"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class FaultDecision:
    """What (if anything) happens to one stage attempt.

    ``fraction`` is the share of the attempt's work completed before a
    kill-type fault strikes (wasted work); ``slowdown`` is the straggler
    time multiplier. Both are neutral for ``kind=None``.
    """

    kind: Optional[FaultKind] = None
    fraction: float = 0.0
    slowdown: float = 1.0

    @property
    def is_fault(self) -> bool:
        """True when any fault was injected."""
        return self.kind is not None

    @property
    def is_kill(self) -> bool:
        """True for faults that lose the attempt's work."""
        return self.kind in (FaultKind.PREEMPTION, FaultKind.OOM_KILL)


#: The decision for an untouched attempt.
NO_FAULT = FaultDecision()


@dataclass(frozen=True)
class FaultSpec:
    """Declarative fault rates plus the seed that fixes every outcome.

    ``oom_rate`` is a *base* rate scaled by the stage's memory pressure
    (how close the operator sits to its OOM wall), so plans with memory
    headroom -- the resource-aware ones -- really are more robust, which
    is the mechanism the fig16 robustness experiment quantifies.
    """

    seed: int = 0
    preemption_rate: float = 0.0
    oom_rate: float = 0.0
    straggler_rate: float = 0.0
    #: Peak straggler slowdown; actual slowdowns draw from
    #: ``[1 + (slowdown-1)/2, slowdown]``.
    straggler_slowdown: float = 3.0

    def __post_init__(self) -> None:
        for name in ("preemption_rate", "oom_rate", "straggler_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultError(
                    f"{name} must be in [0, 1], got {rate}"
                )
        if self.preemption_rate >= 1.0:
            raise FaultError(
                "preemption_rate must be < 1 (a stage preempted with "
                "certainty can never finish)"
            )
        if self.straggler_slowdown < 1.0:
            raise FaultError(
                "straggler_slowdown must be >= 1, got "
                f"{self.straggler_slowdown}"
            )

    @property
    def is_zero(self) -> bool:
        """True when no fault can ever fire under this spec."""
        return (
            self.preemption_rate == 0.0
            and self.oom_rate == 0.0
            and self.straggler_rate == 0.0
        )

    def expected_attempts(self) -> float:
        """Expected executions per stage under preemption alone.

        The geometric-retry mean ``1 / (1 - p)``; the scheduler uses it
        to discount its capacity drain rate (preempted work re-occupies
        capacity when it retries).
        """
        return 1.0 / (1.0 - self.preemption_rate)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (see :mod:`repro.serialization`)."""
        return {
            "seed": self.seed,
            "preemption_rate": self.preemption_rate,
            "oom_rate": self.oom_rate,
            "straggler_rate": self.straggler_rate,
            "straggler_slowdown": self.straggler_slowdown,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultSpec":
        """Rebuild a spec from its JSON form."""
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise FaultError(
                f"unknown fault spec fields: {sorted(unknown)}"
            )
        return cls(**payload)

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse the CLI spec format.

        A comma-separated ``key=value`` list, e.g.
        ``"seed=7,preempt=0.1,oom=0.2,straggle=0.1,slowdown=4"``.
        Omitted keys keep their defaults; ``"none"`` is the zero spec.
        """
        text = text.strip()
        if not text or text == "none":
            return cls()
        aliases = {
            "seed": "seed",
            "preempt": "preemption_rate",
            "preemption_rate": "preemption_rate",
            "oom": "oom_rate",
            "oom_rate": "oom_rate",
            "straggle": "straggler_rate",
            "straggler_rate": "straggler_rate",
            "slowdown": "straggler_slowdown",
            "straggler_slowdown": "straggler_slowdown",
        }
        payload: Dict[str, Any] = {}
        for item in text.split(","):
            key, sep, value = item.partition("=")
            key = key.strip()
            if not sep or not key:
                raise FaultError(
                    f"malformed fault spec item {item!r}; expected "
                    "key=value"
                )
            field = aliases.get(key)
            if field is None:
                raise FaultError(
                    f"unknown fault spec key {key!r}; known keys: "
                    f"{sorted(set(aliases))}"
                )
            try:
                payload[field] = (
                    int(value) if field == "seed" else float(value)
                )
            except ValueError as exc:
                raise FaultError(
                    f"bad value for {key!r}: {value!r}"
                ) from exc
        return cls(**payload)

    def with_seed(self, seed: int) -> "FaultSpec":
        """The same rates under a different seed."""
        return replace(self, seed=seed)


#: A plan that never injects anything (executor output is bit-identical
#: to running without fault injection at all).
ZERO_FAULTS: "FaultPlan"


@dataclass(frozen=True)
class AttemptRecord:
    """One execution attempt of one stage (for reports and tests)."""

    #: 0-based attempt index within the stage.
    index: int
    #: The implementation this attempt ran (may differ from the planned
    #: one after a BHJ -> SMJ degradation).
    algorithm: JoinAlgorithm
    #: The fault that ended the attempt, or None on clean success.
    fault: Optional[FaultKind]
    #: True when the fault came from the injected plan; False for
    #: statically infeasible stages (the BHJ OOM wall).
    injected: bool
    #: Busy container time charged to this attempt (simulated seconds).
    time_s: float
    #: Simulated backoff waited *after* this attempt before the next.
    backoff_s: float
    #: True when the stage completed on this attempt.
    succeeded: bool
    #: True when a speculative copy raced (and beat) a straggler.
    speculative: bool = False
    #: The attempt's span ID when the run was traced (joins the record
    #: back to the trace file); None -- the quiet default -- otherwise.
    span_id: Optional[str] = None


class FaultPlan:
    """Seeded, order-independent fault decisions for every stage attempt.

    Instances are immutable and stateless between calls: each
    :meth:`decide` derives a fresh generator from the (seed, stage_key,
    attempt) triple, so a plan may be shared freely across worker
    threads (RAQO005) and produces identical outcomes regardless of
    execution order.
    """

    def __init__(self, spec: FaultSpec, scope: str = "") -> None:
        self._spec = spec
        self._scope = scope

    @property
    def spec(self) -> FaultSpec:
        """The rates and seed this plan realises."""
        return self._spec

    @property
    def scope(self) -> str:
        """The namespace prefix mixed into every decision hash."""
        return self._scope

    def scoped(self, salt: str) -> "FaultPlan":
        """A plan drawing independent decisions under ``salt``.

        Stage keys are only unique *within* one plan execution; two
        workload queries sharing a join would otherwise share its fault
        fate. Scoping by a stable per-query salt (the query name) keeps
        decisions order-independent while making them independent
        across queries.
        """
        return FaultPlan(
            self._spec, scope=f"{self._scope}\x1e{salt}"
        )

    @property
    def is_zero(self) -> bool:
        """True when this plan can never inject a fault."""
        return self._spec.is_zero

    def rng_for(
        self, stage_key: str, attempt: int
    ) -> np.random.Generator:
        """The deterministic generator for one (stage, attempt) pair."""
        digest = hashlib.sha256(
            f"{self._spec.seed}\x1f{self._scope}\x1f{stage_key}"
            f"\x1f{attempt}".encode()
        ).digest()
        return np.random.default_rng(int.from_bytes(digest, "big"))

    def decide(
        self,
        stage_key: str,
        attempt: int,
        oom_pressure: float = 0.0,
    ) -> FaultDecision:
        """The fault (if any) striking this stage attempt.

        ``oom_pressure`` scales the base OOM rate: it is the operator's
        memory-budget utilisation (e.g. broadcast table size over the
        per-container hash budget), so stages sitting close to their OOM
        wall are proportionally more likely to be killed. A pressure of
        zero (SMJ, or plenty of headroom) disables OOM kills entirely.
        """
        if oom_pressure < 0:
            raise FaultError(
                f"oom_pressure must be >= 0, got {oom_pressure}"
            )
        spec = self._spec
        if spec.is_zero:
            return NO_FAULT
        rng = self.rng_for(stage_key, attempt)
        # A fixed number of draws in a fixed order keeps every decision
        # independent of which branches are taken.
        u_oom, u_preempt, u_straggle, u_frac, u_slow = (
            float(u) for u in rng.random(5)
        )
        effective_oom = min(1.0, spec.oom_rate * oom_pressure)
        fraction = 0.05 + 0.9 * u_frac
        if u_oom < effective_oom:
            return FaultDecision(
                kind=FaultKind.OOM_KILL, fraction=fraction
            )
        if u_preempt < spec.preemption_rate:
            return FaultDecision(
                kind=FaultKind.PREEMPTION, fraction=fraction
            )
        if u_straggle < spec.straggler_rate:
            half = (spec.straggler_slowdown - 1.0) / 2.0
            slowdown = 1.0 + half + half * u_slow
            return FaultDecision(
                kind=FaultKind.STRAGGLER, slowdown=slowdown
            )
        return NO_FAULT

    def __repr__(self) -> str:
        if self._scope:
            return f"FaultPlan({self._spec!r}, scope={self._scope!r})"
        return f"FaultPlan({self._spec!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return (
            self._spec == other._spec and self._scope == other._scope
        )

    def __hash__(self) -> int:
        return hash((self._spec, self._scope))


ZERO_FAULTS = FaultPlan(FaultSpec())


def stage_key_for_join(
    left_tables: Iterable[str],
    right_tables: Iterable[str],
    algorithm: JoinAlgorithm,
) -> str:
    """The stable identity of one join stage for fault keying.

    Built from sorted table names and the *planned* algorithm, so the
    key survives mid-stage degradation and is identical however the
    containing plan is executed (serial, parallel, adaptive).
    """
    left = "|".join(sorted(left_tables))
    right = "|".join(sorted(right_tables))
    return f"{left}><{right}:{algorithm.value}"
