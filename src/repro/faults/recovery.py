"""Recovery policies: retries, backoff, speculation, degradation.

The policy layer decides how the engine reacts to an injected (or
statically modelled) fault:

- *retry with capped exponential backoff*: a killed attempt is re-run
  after ``backoff_base_s * backoff_factor**k`` simulated seconds (capped
  at ``backoff_cap_s``), at most ``max_retries`` times. Backoff elapses
  on the simulated clock but holds no containers, so it adds latency but
  no GB-seconds;
- *speculative re-execution*: when a straggler runs slower than
  ``speculative_threshold``x, a backup copy launches after the original
  has run for ``speculative_launch_fraction`` of its modelled time; the
  stage finishes when the first copy does, and both copies are charged
  until then (the Dremel/LATE-style mitigation);
- *graceful degradation*: a BHJ stage that OOMs -- whether killed by the
  fault plan or statically infeasible under its envelope -- falls back
  to SMJ instead of failing the query. Degradation is a re-plan, not a
  retry, so it does not consume the retry budget; the adaptive runtime
  re-costs the fallback through the RAQO coster.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict

from repro.faults.model import FaultError


@dataclass(frozen=True)
class RecoveryPolicy:
    """How execution reacts to faults."""

    #: Maximum retries per stage after kill-type faults (attempts are
    #: therefore capped at ``max_retries + 1``, degradations aside).
    max_retries: int = 3
    #: First backoff, in simulated seconds.
    backoff_base_s: float = 2.0
    #: Multiplier per additional retry.
    backoff_factor: float = 2.0
    #: Upper bound on any single backoff.
    backoff_cap_s: float = 60.0
    #: Fall back from BHJ to SMJ after an OOM instead of failing.
    degrade_bhj_to_smj: bool = True
    #: Launch a backup copy for stragglers at least this much slower
    #: than modelled; ``inf`` disables speculation.
    speculative_threshold: float = 2.0
    #: When the backup launches, as a fraction of the stage's modelled
    #: (un-slowed) execution time.
    speculative_launch_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise FaultError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base_s < 0:
            raise FaultError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )
        if self.backoff_factor < 1.0:
            raise FaultError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_cap_s < 0:
            raise FaultError(
                f"backoff_cap_s must be >= 0, got {self.backoff_cap_s}"
            )
        if self.speculative_threshold < 1.0:
            raise FaultError(
                "speculative_threshold must be >= 1, got "
                f"{self.speculative_threshold}"
            )
        if not 0.0 < self.speculative_launch_fraction <= 1.0:
            raise FaultError(
                "speculative_launch_fraction must be in (0, 1], got "
                f"{self.speculative_launch_fraction}"
            )

    def backoff_s(self, retry: int) -> float:
        """Simulated wait before the ``retry``-th re-attempt (1-based)."""
        if retry < 1:
            raise FaultError(f"retry must be >= 1, got {retry}")
        return min(
            self.backoff_cap_s,
            self.backoff_base_s * self.backoff_factor ** (retry - 1),
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (see :mod:`repro.serialization`)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RecoveryPolicy":
        """Rebuild a policy from its JSON form."""
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise FaultError(
                f"unknown recovery policy fields: {sorted(unknown)}"
            )
        return cls(**payload)


#: The stock policy used when fault injection is enabled without an
#: explicit policy.
DEFAULT_RECOVERY = RecoveryPolicy()
