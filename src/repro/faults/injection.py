"""The shared fault-aware stage attempt loop.

Both execution paths -- the batch executor
(:func:`repro.engine.executor.execute_plan`) and the adaptive runtime
(:class:`repro.engine.runtime.AdaptiveRuntime`) -- drive each join stage
through :func:`run_stage_with_faults`. The loop consults the
:class:`~repro.faults.model.FaultPlan` before charging each attempt,
applies the :class:`~repro.faults.recovery.RecoveryPolicy` (retries with
backoff, speculation, BHJ -> SMJ degradation), and returns a complete
per-attempt accounting.

The caller supplies the physics through callbacks (how an attempt
executes, how close it sits to its OOM wall, how a degraded stage is
re-costed), which keeps this module free of engine imports beyond type
signatures and lets the runtime plug the RAQO coster into degradation.

Accounting rules:

- *busy* container time (wasted attempts, the successful run, any
  speculative copy) accrues GB-seconds at the resources it ran on;
- *backoff* elapses on the simulated clock only -- no containers held;
- a stage that exhausts its retry budget, or is infeasible with no
  degradation path, reports ``feasible=False`` with infinite time, the
  same convention the executor has always used for the BHJ OOM wall.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.cluster.containers import ResourceConfiguration
from repro.engine.joins import JoinAlgorithm, JoinExecution
from repro.faults.model import (
    AttemptRecord,
    FaultKind,
    FaultPlan,
)
from repro.faults.recovery import RecoveryPolicy
from repro.obs.tracing import (
    NULL_SPAN,
    NULL_TRACER,
    SpanHandle,
    Tracer,
)

#: Runs one attempt of the stage: (algorithm, resources) -> execution.
AttemptRunner = Callable[
    [JoinAlgorithm, ResourceConfiguration], JoinExecution
]

#: Memory-budget utilisation of the stage under (algorithm, resources);
#: scales the injected OOM rate.
PressureFn = Callable[[JoinAlgorithm, ResourceConfiguration], float]

#: Re-plans resources for the degraded algorithm (None keeps current).
DegradeReplanner = Callable[
    [JoinAlgorithm], Optional[ResourceConfiguration]
]

#: Behaviour when no recovery layer is configured: fail on first kill,
#: never degrade, never speculate.
_NULL_RECOVERY = RecoveryPolicy(
    max_retries=0,
    backoff_base_s=0.0,
    backoff_cap_s=0.0,
    degrade_bhj_to_smj=False,
    speculative_threshold=math.inf,
)


@dataclass(frozen=True)
class StageFaultOutcome:
    """Everything one fault-aware stage execution produced."""

    feasible: bool
    #: The implementation that ultimately ran (SMJ after degradation).
    algorithm: JoinAlgorithm
    #: The resources the final attempt ran on.
    resources: ResourceConfiguration
    #: Simulated wall time including wasted attempts and backoffs.
    elapsed_s: float
    #: GB-seconds across every busy segment (wasted + final + copies).
    gb_seconds: float
    #: Per-attempt history; empty when nothing noteworthy happened
    #: (clean first-attempt success), keeping zero-fault runs
    #: bit-identical to fault-free execution.
    attempts: Tuple[AttemptRecord, ...]
    retries: int
    degraded: bool
    speculative: bool
    faults_injected: int


def run_stage_with_faults(
    stage_key: str,
    algorithm: JoinAlgorithm,
    resources: ResourceConfiguration,
    run_attempt: AttemptRunner,
    oom_pressure: PressureFn,
    faults: Optional[FaultPlan] = None,
    recovery: Optional[RecoveryPolicy] = None,
    replan_on_degrade: Optional[DegradeReplanner] = None,
    tracer: Tracer = NULL_TRACER,
    stage_span: SpanHandle = NULL_SPAN,
    sim_start_s: float = 0.0,
) -> StageFaultOutcome:
    """Execute one stage to completion (or declared infeasibility).

    ``stage_key`` must be stable across runs and execution orders (see
    :func:`~repro.faults.model.stage_key_for_join`); together with the
    attempt counter it fully determines every fault decision.

    When ``tracer`` is active, each attempt emits an ``attempt`` span
    under ``stage_span`` (keyed by the attempt index, so span IDs stay
    order-independent) with its simulated-time window relative to
    ``sim_start_s`` -- the stage's position on the run's simulated
    clock -- plus fault/retry events.  The resulting span IDs are
    stamped onto the corresponding :class:`AttemptRecord` instances.
    """
    policy = recovery if recovery is not None else _NULL_RECOVERY
    attempts: List[AttemptRecord] = []
    elapsed_s = 0.0
    gb_seconds = 0.0
    trial = 0
    retries_used = 0
    degraded = False
    speculative = False

    def _note_attempt(
        index: int,
        attempt_algorithm: JoinAlgorithm,
        fault: Optional[FaultKind],
        injected: bool,
        time_s: float,
        backoff_s: float,
        succeeded: bool,
        start_s: float,
        window_s: Optional[float] = None,
        launched_copy: bool = False,
    ) -> None:
        """Record one attempt; emits its span when tracing is active."""
        span_id: Optional[str] = None
        if tracer.active:
            span = tracer.span(
                "attempt",
                kind="engine",
                parent=stage_span,
                key=str(index),
            )
            with span:
                span_start = sim_start_s + start_s
                duration = time_s if window_s is None else window_s
                if math.isfinite(span_start) and math.isfinite(duration):
                    span.set_sim_window(
                        span_start, span_start + duration
                    )
                span.set_attributes(
                    {
                        "index": index,
                        "algorithm": attempt_algorithm.value,
                        "succeeded": succeeded,
                        "busy_s": time_s,
                    }
                )
                if launched_copy:
                    span.set_attribute("speculative", True)
                if fault is not None:
                    span.event(
                        "fault",
                        sim_time_s=span_start + duration,
                        attributes={
                            "kind": fault.value,
                            "injected": injected,
                        },
                    )
                if backoff_s > 0.0:
                    span.event(
                        "retry-backoff",
                        sim_time_s=span_start + duration,
                        attributes={"backoff_s": backoff_s},
                    )
            span_id = span.span_id
        attempts.append(
            AttemptRecord(
                index=index,
                algorithm=attempt_algorithm,
                fault=fault,
                injected=injected,
                time_s=time_s,
                backoff_s=backoff_s,
                succeeded=succeeded,
                speculative=launched_copy,
                span_id=span_id,
            )
        )

    def _outcome(
        feasible: bool,
        elapsed: float,
        gb: float,
    ) -> StageFaultOutcome:
        noteworthy = len(attempts) > 1 or any(
            a.fault is not None or a.speculative for a in attempts
        )
        return StageFaultOutcome(
            feasible=feasible,
            algorithm=algorithm,
            resources=resources,
            elapsed_s=elapsed,
            gb_seconds=gb,
            attempts=tuple(attempts) if noteworthy else (),
            retries=retries_used,
            degraded=degraded,
            speculative=speculative,
            faults_injected=sum(
                1 for a in attempts if a.fault is not None and a.injected
            ),
        )

    while True:
        attempt_start_s = elapsed_s
        execution = run_attempt(algorithm, resources)
        can_degrade = (
            policy.degrade_bhj_to_smj
            and not degraded
            and algorithm is JoinAlgorithm.BROADCAST_HASH
        )

        if not execution.feasible:
            # The static OOM wall: the broadcast table cannot fit this
            # envelope, no matter how often we retry.
            if can_degrade:
                _note_attempt(
                    index=trial,
                    attempt_algorithm=algorithm,
                    fault=FaultKind.OOM_KILL,
                    injected=False,
                    time_s=0.0,
                    backoff_s=0.0,
                    succeeded=False,
                    start_s=attempt_start_s,
                )
                algorithm, resources, degraded = _degrade(
                    resources, replan_on_degrade
                )
                trial += 1
                continue
            return _outcome(False, math.inf, math.inf)

        decision = (
            faults.decide(
                stage_key,
                trial,
                oom_pressure=oom_pressure(algorithm, resources),
            )
            if faults is not None
            else None
        )

        if decision is None or not decision.is_fault:
            elapsed_s += execution.time_s
            gb_seconds += resources.gb_seconds(execution.time_s)
            _note_attempt(
                index=trial,
                attempt_algorithm=algorithm,
                fault=None,
                injected=False,
                time_s=execution.time_s,
                backoff_s=0.0,
                succeeded=True,
                start_s=attempt_start_s,
            )
            return _outcome(True, elapsed_s, gb_seconds)

        if decision.kind is FaultKind.STRAGGLER:
            slowed_s = execution.time_s * decision.slowdown
            launches_copy = (
                decision.slowdown >= policy.speculative_threshold
            )
            if launches_copy:
                launch_s = (
                    execution.time_s
                    * policy.speculative_launch_fraction
                )
                finish_s = min(slowed_s, launch_s + execution.time_s)
                busy_s = finish_s + (finish_s - launch_s)
                speculative = True
            else:
                finish_s = slowed_s
                busy_s = slowed_s
            elapsed_s += finish_s
            gb_seconds += resources.gb_seconds(busy_s)
            _note_attempt(
                index=trial,
                attempt_algorithm=algorithm,
                fault=FaultKind.STRAGGLER,
                injected=True,
                time_s=busy_s,
                backoff_s=0.0,
                succeeded=True,
                start_s=attempt_start_s,
                window_s=finish_s,
                launched_copy=launches_copy,
            )
            return _outcome(True, elapsed_s, gb_seconds)

        # Kill-type fault: the attempt's partial work is lost.
        wasted_s = execution.time_s * decision.fraction
        elapsed_s += wasted_s
        gb_seconds += resources.gb_seconds(wasted_s)
        backoff_s = 0.0
        if decision.kind is FaultKind.OOM_KILL and can_degrade:
            _note_attempt(
                index=trial,
                attempt_algorithm=algorithm,
                fault=decision.kind,
                injected=True,
                time_s=wasted_s,
                backoff_s=0.0,
                succeeded=False,
                start_s=attempt_start_s,
            )
            algorithm, resources, degraded = _degrade(
                resources, replan_on_degrade
            )
        else:
            if retries_used >= policy.max_retries:
                _note_attempt(
                    index=trial,
                    attempt_algorithm=algorithm,
                    fault=decision.kind,
                    injected=True,
                    time_s=wasted_s,
                    backoff_s=0.0,
                    succeeded=False,
                    start_s=attempt_start_s,
                )
                return _outcome(False, math.inf, math.inf)
            retries_used += 1
            backoff_s = policy.backoff_s(retries_used)
            elapsed_s += backoff_s
            _note_attempt(
                index=trial,
                attempt_algorithm=algorithm,
                fault=decision.kind,
                injected=True,
                time_s=wasted_s,
                backoff_s=backoff_s,
                succeeded=False,
                start_s=attempt_start_s,
            )
        trial += 1


def _degrade(
    resources: ResourceConfiguration,
    replan: Optional[DegradeReplanner],
) -> Tuple[JoinAlgorithm, ResourceConfiguration, bool]:
    """The BHJ -> SMJ fallback, optionally re-costed by the caller."""
    fallback = JoinAlgorithm.SORT_MERGE
    if replan is not None:
        replanned = replan(fallback)
        if replanned is not None:
            resources = replanned
    return fallback, resources, True
