"""Physical-unit NewTypes for the cost and resource models.

The paper's cost model mixes four measurement scales -- data sizes in
gigabytes, predicted times in seconds, cardinalities in rows, and
cluster capacity in containers (plus derived monetary rates for the
cloud-cost discussion).  Plain ``float`` erases the distinction, so a
transposed ``predict(large, small, ...)`` call or a ``seconds + gb``
sum type-checks and silently corrupts plans.

These ``NewType`` wrappers restore the distinction at zero runtime
cost.  They are *annotations first*: mypy rejects passing a bare float
where ``GB`` is expected, and the RAQO013 whole-program unit checker
(:mod:`repro.analysis.flow.units`) abstractly interprets arithmetic on
them, flagging cross-unit ``+``/``-``/comparisons even through local
variables and attribute loads.

Constructor calls are the sanctioned cast points::

    elapsed = Seconds(raw_measurement)   # ok: explicit entry
    total = elapsed + table_gb           # flagged: s + gb

Derived quantities (``GB / Seconds`` throughput, ``GB * Seconds``
memory-time integrals) need no dedicated NewType -- the checker tracks
dimension exponents -- but the two common ones are named below for
signature readability.
"""

from __future__ import annotations

from typing import NewType

#: Wall-clock or predicted execution time, in seconds.
Seconds = NewType("Seconds", float)

#: Data volume, in gigabytes (the paper's relation-size unit).
GB = NewType("GB", float)

#: Relation cardinality, in rows.
Rows = NewType("Rows", float)

#: Monetary cost, in dollars.
Dollars = NewType("Dollars", float)

#: Cluster capacity, in container slots.
Containers = NewType("Containers", int)

#: Cloud price rate (dollars per hour of a container).
DollarsPerHour = NewType("DollarsPerHour", float)

#: Memory-time integral (the YARN-style resource-seconds charge unit).
GBSeconds = NewType("GBSeconds", float)

__all__ = [
    "Containers",
    "Dollars",
    "DollarsPerHour",
    "GB",
    "GBSeconds",
    "Rows",
    "Seconds",
]
