"""JSON serialization for plans, cost models, and decision trees.

A deployable RAQO needs its learned artifacts to outlive the process: the
paper's cost models are "a one-time investment for each system" and its
decision trees are meant to be "simply plugged into Hive and Spark". This
module round-trips the three artifact kinds through plain JSON:

- joint query/resource plans (:func:`plan_to_dict` / :func:`plan_from_dict`),
- learned operator cost models (:func:`cost_model_to_dict` / ...),
- CART decision trees (:func:`tree_to_dict` / ...),
- fault specs and recovery policies (:func:`fault_spec_to_dict` / ...),
  so a robustness experiment's exact fault schedule can be replayed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.cluster.containers import ResourceConfiguration
from repro.core.cost_model import (
    EXTENDED_FEATURES,
    FeatureMap,
    OperatorCostModel,
    PAPER_FEATURES,
)
from repro.core.decision_tree import DecisionTreeClassifier, TreeNode
from repro.engine.joins import JoinAlgorithm
from repro.faults.model import FaultError, FaultSpec
from repro.faults.recovery import RecoveryPolicy
from repro.planner.plan import JoinNode, PlanNode, ScanNode

#: Registry of feature maps by name (feature maps carry code, so they
#: serialize by reference).
FEATURE_MAPS: Dict[str, FeatureMap] = {
    PAPER_FEATURES.name: PAPER_FEATURES,
    EXTENDED_FEATURES.name: EXTENDED_FEATURES,
}


class SerializationError(Exception):
    """Raised for malformed serialized artifacts."""


# --- plans ---


def plan_to_dict(plan: PlanNode) -> Dict[str, Any]:
    """Serialize a plan tree (including per-operator resources)."""
    if isinstance(plan, ScanNode):
        return {"kind": "scan", "table": plan.table}
    if isinstance(plan, JoinNode):
        payload: Dict[str, Any] = {
            "kind": "join",
            "algorithm": plan.algorithm.value,
            "left": plan_to_dict(plan.left),
            "right": plan_to_dict(plan.right),
        }
        if plan.resources is not None:
            payload["resources"] = {
                "num_containers": plan.resources.num_containers,
                "container_gb": plan.resources.container_gb,
            }
        return payload
    raise SerializationError(
        f"unknown plan node type {type(plan).__name__}"
    )


def plan_from_dict(payload: Dict[str, Any]) -> PlanNode:
    """Rebuild a plan tree from its JSON form."""
    kind = payload.get("kind")
    if kind == "scan":
        return ScanNode(payload["table"])
    if kind == "join":
        resources = None
        if "resources" in payload:
            resources = ResourceConfiguration(
                num_containers=payload["resources"]["num_containers"],
                container_gb=payload["resources"]["container_gb"],
            )
        return JoinNode(
            left=plan_from_dict(payload["left"]),
            right=plan_from_dict(payload["right"]),
            algorithm=JoinAlgorithm(payload["algorithm"]),
            resources=resources,
        )
    raise SerializationError(f"unknown plan node kind {kind!r}")


# --- cost models ---


def cost_model_to_dict(model: OperatorCostModel) -> Dict[str, Any]:
    """Serialize a fitted operator cost model."""
    return {
        "algorithm": model.algorithm.value,
        "feature_map": model.feature_map.name,
        "coefficients": list(model.coefficients),
        "intercept": model.intercept,
    }


def cost_model_from_dict(payload: Dict[str, Any]) -> OperatorCostModel:
    """Rebuild a cost model; the feature map resolves by name."""
    feature_map = FEATURE_MAPS.get(payload.get("feature_map"))
    if feature_map is None:
        raise SerializationError(
            f"unknown feature map {payload.get('feature_map')!r}"
        )
    return OperatorCostModel(
        algorithm=JoinAlgorithm(payload["algorithm"]),
        feature_map=feature_map,
        coefficients=tuple(payload["coefficients"]),
        intercept=float(payload["intercept"]),
    )


# --- decision trees ---


def _node_to_dict(node: TreeNode) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "gini": node.gini,
        "samples": node.samples,
        "value": list(node.value),
        "prediction": node.prediction,
    }
    if not node.is_leaf:
        payload.update(
            feature=node.feature,
            threshold=node.threshold,
            left=_node_to_dict(node.left),
            right=_node_to_dict(node.right),
        )
    return payload


def _node_from_dict(payload: Dict[str, Any]) -> TreeNode:
    node = TreeNode(
        gini=float(payload["gini"]),
        samples=int(payload["samples"]),
        value=tuple(int(v) for v in payload["value"]),
        prediction=int(payload["prediction"]),
    )
    if "feature" in payload:
        node.feature = int(payload["feature"])
        node.threshold = float(payload["threshold"])
        node.left = _node_from_dict(payload["left"])
        node.right = _node_from_dict(payload["right"])
    return node


def tree_to_dict(tree: DecisionTreeClassifier) -> Dict[str, Any]:
    """Serialize a fitted CART tree."""
    if tree.root is None:
        raise SerializationError("cannot serialize an unfitted tree")
    return {
        "classes": list(tree.classes_),
        "n_features": tree.n_features_,
        "max_depth": tree.max_depth,
        "min_samples_split": tree.min_samples_split,
        "min_samples_leaf": tree.min_samples_leaf,
        "root": _node_to_dict(tree.root),
    }


def tree_from_dict(payload: Dict[str, Any]) -> DecisionTreeClassifier:
    """Rebuild a fitted CART tree."""
    tree = DecisionTreeClassifier(
        max_depth=payload.get("max_depth"),
        min_samples_split=int(payload.get("min_samples_split", 2)),
        min_samples_leaf=int(payload.get("min_samples_leaf", 1)),
    )
    tree.classes_ = tuple(payload["classes"])
    tree.n_features_ = int(payload["n_features"])
    tree.root = _node_from_dict(payload["root"])
    return tree


# --- fault specs and recovery policies ---


def fault_spec_to_dict(spec: FaultSpec) -> Dict[str, Any]:
    """Serialize a fault spec (rates + seed)."""
    return spec.to_dict()


def fault_spec_from_dict(payload: Dict[str, Any]) -> FaultSpec:
    """Rebuild a fault spec from its JSON form."""
    try:
        return FaultSpec.from_dict(payload)
    except (FaultError, TypeError) as exc:
        raise SerializationError(f"bad fault spec: {exc}") from exc


def recovery_policy_to_dict(policy: RecoveryPolicy) -> Dict[str, Any]:
    """Serialize a recovery policy."""
    return policy.to_dict()


def recovery_policy_from_dict(payload: Dict[str, Any]) -> RecoveryPolicy:
    """Rebuild a recovery policy from its JSON form."""
    try:
        return RecoveryPolicy.from_dict(payload)
    except (FaultError, TypeError) as exc:
        raise SerializationError(
            f"bad recovery policy: {exc}"
        ) from exc


# --- file helpers ---


def save_json(
    payload: Dict[str, Any], path: Union[str, Path]
) -> None:
    """Write an artifact dict as pretty-printed JSON."""
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_json(path: Union[str, Path]) -> Dict[str, Any]:
    """Read an artifact dict back."""
    return json.loads(Path(path).read_text())
