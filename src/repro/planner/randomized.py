"""The FastRandomized multi-objective query planner.

Re-implementation of the randomized multi-objective join-ordering algorithm
of Trummer & Koch (SIGMOD 2016) at the granularity the paper uses it:
"we re-implemented the fast randomized algorithm ... we set the same target
approximation precision ... for each node in the plan tree, we considered
the associativity and the exchange mutations as described in [Steinbrunn et
al.]" (Sec VII-A).

The planner runs multi-start randomized hill climbing over bushy join
trees. Each start draws a random connected join tree, then repeatedly
applies a random mutation (commutativity, associativity, exchange, or a
join-implementation flip), accepting improvements of the scalarised cost.
Every costed plan is offered to an alpha-approximate Pareto frontier over
(execution time, monetary cost); the frontier is returned alongside the
best scalar plan.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.catalog.join_graph import JoinGraph
from repro.catalog.queries import Query
from repro.planner.cost_interface import (
    Cost,
    PlanCoster,
    PlanningContext,
    PlanningResult,
    Stopwatch,
    frontier,
    get_plan_cost,
    get_plan_cost_batched,
)
from repro.planner.operators import JOIN_IMPLEMENTATIONS
from repro.planner.plan import (
    JoinNode,
    PlanNode,
    ScanNode,
    plan_signature,
)
from repro.planner.selinger import PlanningError, _counters_delta

Path = Tuple[str, ...]


@dataclass(frozen=True)
class MultiObjectiveResult(PlanningResult):
    """A planning result that also carries the Pareto frontier."""

    frontier: Tuple[Tuple[PlanNode, Cost], ...] = ()


class ParetoFrontier:
    """An alpha-approximate Pareto set over (time, money) costs.

    A candidate is admitted only if no existing entry is within a factor
    ``(1 + alpha)`` of it in *both* objectives -- the approximation
    precision knob of Trummer & Koch's algorithm.
    """

    def __init__(self, alpha: float = 0.05) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self.alpha = alpha
        self._entries: List[Tuple[PlanNode, Cost]] = []

    def offer(self, plan: PlanNode, cost: Cost) -> bool:
        """Insert if not approximately dominated; returns True on insert."""
        if not cost.is_finite:
            return False
        slack = 1.0 + self.alpha
        for _, existing in self._entries:
            if (
                existing.time_s <= cost.time_s * slack
                and existing.money <= cost.money * slack
            ):
                return False
        self._entries = [
            (p, c) for (p, c) in self._entries if not cost.dominates(c)
        ]
        self._entries.append((plan, cost))
        return True

    def entries(self) -> Tuple[Tuple[PlanNode, Cost], ...]:
        """The frontier, exactly pruned and sorted by execution time.

        ``offer`` already rejects approximately-dominated candidates
        and evicts exactly-dominated entries, so routing the result
        through the shared :func:`~repro.planner.cost_interface.frontier`
        reference only re-sorts -- but it pins this planner's frontier
        semantics to the same single implementation the vectorized
        skyline pass (:mod:`repro.core.pareto`) verifies against.
        """
        return tuple(frontier(self._entries))

    def __len__(self) -> int:
        return len(self._entries)


class FastRandomizedPlanner:
    """Multi-start randomized multi-objective join-order optimizer.

    With ``batched`` (the default) every candidate plan -- the random
    start and each accepted-or-rejected mutation neighbour -- has all
    its joins costed as one :class:`~repro.planner.plan.CandidateBatch`
    instead of per-join coster calls. The search itself (RNG stream,
    mutation choices, acceptance tests) is untouched, so the batched
    mode is bit-identical to the scalar one.
    """

    name = "fast_randomized"

    def __init__(
        self,
        coster: PlanCoster,
        iterations: int = 10,
        alpha: float = 0.05,
        patience: Optional[int] = None,
        time_weight: float = 1.0,
        money_weight: float = 0.0,
        seed: int = 0,
        batched: bool = True,
    ) -> None:
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        self._coster = coster
        self._iterations = iterations
        self._alpha = alpha
        self._patience = patience
        self._time_weight = time_weight
        self._money_weight = money_weight
        self._seed = seed
        self._batched = batched

    def _scalar(self, cost: Cost) -> float:
        return cost.scalar(self._time_weight, self._money_weight)

    def _cost_plan(
        self, plan: PlanNode, context: PlanningContext
    ) -> Tuple[PlanNode, Cost]:
        if self._batched:
            return get_plan_cost_batched(plan, self._coster, context)
        return get_plan_cost(plan, self._coster, context)

    def plan(
        self, query: Query, context: PlanningContext
    ) -> MultiObjectiveResult:
        """Optimize ``query``; see :class:`MultiObjectiveResult`."""
        query.validate(context.estimator.catalog)
        watch = Stopwatch()
        start = dataclasses.replace(context.counters)
        batches_before = len(context.batch_sizes)
        rng = np.random.default_rng(self._seed)
        graph = context.estimator.join_graph
        patience = self._patience or max(20, 8 * len(query.tables))

        frontier = ParetoFrontier(self._alpha)
        best: Optional[Tuple[PlanNode, Cost]] = None
        seen: Set[Tuple] = set()

        for _ in range(self._iterations):
            plan = random_join_tree(query.tables, graph, rng)
            plan, cost = self._cost_plan(plan, context)
            frontier.offer(plan, cost)
            if cost.is_finite and (
                best is None or self._scalar(cost) < self._scalar(best[1])
            ):
                best = (plan, cost)
            current, current_cost = plan, cost
            failures = 0
            while failures < patience:
                candidate = mutate(current, graph, rng)
                if candidate is None:
                    failures += 1
                    continue
                signature = plan_signature(candidate)
                if signature in seen:
                    failures += 1
                    continue
                seen.add(signature)
                candidate, candidate_cost = self._cost_plan(
                    candidate, context
                )
                frontier.offer(candidate, candidate_cost)
                improved = candidate_cost.is_finite and (
                    not current_cost.is_finite
                    or self._scalar(candidate_cost)
                    < self._scalar(current_cost)
                )
                if improved:
                    current, current_cost = candidate, candidate_cost
                    failures = 0
                    if best is None or self._scalar(
                        candidate_cost
                    ) < self._scalar(best[1]):
                        best = (candidate, candidate_cost)
                else:
                    failures += 1

        if best is None:
            raise PlanningError(
                f"randomized planner found no feasible plan for "
                f"{query.name!r}"
            )
        delta = _counters_delta(start, context.counters)
        return MultiObjectiveResult(
            query=query,
            plan=best[0],
            cost=best[1],
            wall_time_s=watch.elapsed_s(),
            counters=delta,
            planner_name=self.name,
            batch_sizes=tuple(context.batch_sizes[batches_before:]),
            frontier=frontier.entries(),
        )


def random_join_tree(
    tables: Sequence[str], graph: JoinGraph, rng: np.random.Generator
) -> PlanNode:
    """A uniformly random *connected* bushy join tree over ``tables``.

    Components are merged pairwise, always along an existing join edge,
    so no join node is a cross product. Join implementations are drawn
    uniformly.
    """
    components: List[PlanNode] = [ScanNode(t) for t in tables]
    while len(components) > 1:
        joinable = [
            (i, j)
            for i in range(len(components))
            for j in range(i + 1, len(components))
            if graph.edges_between(
                components[i].tables, components[j].tables
            )
        ]
        if not joinable:
            raise PlanningError(
                f"tables {sorted(t for c in components for t in c.tables)} "
                "do not form a connected join query"
            )
        i, j = joinable[int(rng.integers(len(joinable)))]
        algorithm = JOIN_IMPLEMENTATIONS[
            int(rng.integers(len(JOIN_IMPLEMENTATIONS)))
        ]
        merged = JoinNode(
            left=components[i], right=components[j], algorithm=algorithm
        )
        components = [
            c for k, c in enumerate(components) if k not in (i, j)
        ]
        components.append(merged)
    return components[0]


def plan_is_valid(plan: PlanNode, graph: JoinGraph) -> bool:
    """True when no join in the plan is a cross product."""
    for join in plan.joins_postorder():
        if not graph.edges_between(join.left.tables, join.right.tables):
            return False
    return True


def _join_paths(node: PlanNode, prefix: Path = ()) -> List[Path]:
    """Paths ('L'/'R' sequences from the root) of all join nodes."""
    if not isinstance(node, JoinNode):
        return []
    paths = [prefix]
    paths.extend(_join_paths(node.left, prefix + ("L",)))
    paths.extend(_join_paths(node.right, prefix + ("R",)))
    return paths


def _node_at(node: PlanNode, path: Path) -> PlanNode:
    for step in path:
        if not isinstance(node, JoinNode):
            raise PlanningError(f"invalid path {path}")
        node = node.left if step == "L" else node.right
    return node


def _replace_at(node: PlanNode, path: Path, new: PlanNode) -> PlanNode:
    if not path:
        return new
    if not isinstance(node, JoinNode):
        raise PlanningError(f"invalid path {path}")
    if path[0] == "L":
        return dataclasses.replace(
            node, left=_replace_at(node.left, path[1:], new)
        )
    return dataclasses.replace(
        node, right=_replace_at(node.right, path[1:], new)
    )


def mutate(
    plan: PlanNode, graph: JoinGraph, rng: np.random.Generator
) -> Optional[PlanNode]:
    """Apply one random mutation; None when it produced an invalid plan.

    Mutations: commutativity (swap inputs), left/right associativity
    rotations, the exchange mutation of Steinbrunn et al., and a join
    implementation flip.
    """
    paths = _join_paths(plan)
    if not paths:
        return None
    path = paths[int(rng.integers(len(paths)))]
    join = _node_at(plan, path)
    assert isinstance(join, JoinNode)
    mutation = int(rng.integers(5))

    if mutation == 0:  # commutativity
        new = dataclasses.replace(join, left=join.right, right=join.left)
    elif mutation == 1:  # left associativity: (A |><| B) |><| C -> A |><| (B |><| C)
        if not isinstance(join.left, JoinNode):
            return None
        a, b, c = join.left.left, join.left.right, join.right
        inner = dataclasses.replace(join.left, left=b, right=c)
        new = dataclasses.replace(join, left=a, right=inner)
    elif mutation == 2:  # right associativity: A |><| (B |><| C) -> (A |><| B) |><| C
        if not isinstance(join.right, JoinNode):
            return None
        a, b, c = join.left, join.right.left, join.right.right
        inner = dataclasses.replace(join.right, left=a, right=b)
        new = dataclasses.replace(join, left=inner, right=c)
    elif mutation == 3:  # exchange: (A |><| B) |><| (C |><| D) -> (A |><| C) |><| (B |><| D)
        if not (
            isinstance(join.left, JoinNode)
            and isinstance(join.right, JoinNode)
        ):
            return None
        a, b = join.left.left, join.left.right
        c, d = join.right.left, join.right.right
        new_left = dataclasses.replace(join.left, left=a, right=c)
        new_right = dataclasses.replace(join.right, left=b, right=d)
        new = dataclasses.replace(join, left=new_left, right=new_right)
    else:  # join implementation flip
        alternatives = [
            alg for alg in JOIN_IMPLEMENTATIONS if alg != join.algorithm
        ]
        new = join.with_algorithm(
            alternatives[int(rng.integers(len(alternatives)))]
        )

    mutated = _replace_at(plan, path, new)
    if mutation in (1, 2, 3) and not plan_is_valid(mutated, graph):
        return None
    return mutated
