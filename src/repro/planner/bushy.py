"""Bushy dynamic-programming join ordering (DPsize).

The paper's Selinger prototype is left-deep ("we implemented the Selinger
algorithm for left deep trees"), while its FastRandomized planner searches
bushy trees. This module completes the picture with the classic
DPsize-style exhaustive bushy optimizer: for every connected relation
subset, the best plan is the cheapest join of two connected,
complementary sub-plans. It shares the :class:`~repro.planner.
cost_interface.PlanCoster` seam, so it runs as a plain query optimizer or
as cost-based RAQO, and bounds the quality of both other planners on
small queries (see the planner-agreement tests).
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.catalog.queries import Query
from repro.planner.cost_interface import (
    Cost,
    PlanCoster,
    PlanningContext,
    PlanningResult,
    Stopwatch,
    ZERO_COST,
    dispatch_cost_batch,
)
from repro.planner.operators import JOIN_IMPLEMENTATIONS
from repro.planner.plan import CandidateBatch, JoinNode, PlanNode, ScanNode
from repro.planner.selinger import PlanningError, _counters_delta

#: Exhaustive bushy enumeration is exponential; refuse silly inputs.
MAX_BUSHY_RELATIONS = 12


class BushyPlanner:
    """Exhaustive bushy join-order optimizer (DPsize).

    With ``batched`` (the default) each DP level -- every (left, right,
    implementation) partition of every connected subset of one size --
    is costed through a single ``cost_batch`` call, exactly like the
    left-deep :class:`~repro.planner.selinger.SelingerPlanner`:
    size-``k`` entries only read strictly smaller ``best`` entries, so
    the batched level is bit-identical to the per-candidate loop.
    """

    name = "bushy_dp"

    def __init__(
        self,
        coster: PlanCoster,
        time_weight: float = 1.0,
        money_weight: float = 0.0,
        batched: bool = True,
    ) -> None:
        self._coster = coster
        self._time_weight = time_weight
        self._money_weight = money_weight
        self._batched = batched

    def _scalar(self, cost: Cost) -> float:
        return cost.scalar(self._time_weight, self._money_weight)

    def plan(
        self, query: Query, context: PlanningContext
    ) -> PlanningResult:
        """Optimize ``query`` over the full bushy plan space."""
        if len(query.tables) > MAX_BUSHY_RELATIONS:
            raise PlanningError(
                f"bushy DP is exhaustive; {len(query.tables)} relations "
                f"exceed the {MAX_BUSHY_RELATIONS}-relation limit -- use "
                "the FastRandomized planner"
            )
        query.validate(context.estimator.catalog)
        watch = Stopwatch()
        start = dataclasses.replace(context.counters)
        batches_before = len(context.batch_sizes)

        graph = context.estimator.join_graph
        best: Dict[FrozenSet[str], Tuple[PlanNode, Cost]] = {}
        for table in query.tables:
            best[frozenset((table,))] = (ScanNode(table), ZERO_COST)

        all_tables = frozenset(query.tables)
        for size in range(2, len(query.tables) + 1):
            if self._batched:
                self._split_level(size, all_tables, best, context)
                continue
            for combo in itertools.combinations(sorted(all_tables), size):
                subset = frozenset(combo)
                if not graph.is_connected(subset):
                    continue
                entry = self._best_split(subset, best, context)
                if entry is not None:
                    best[subset] = entry

        if all_tables not in best:
            raise PlanningError(
                f"no connected bushy plan found for {query.name!r}"
            )
        plan, cost = best[all_tables]
        delta = _counters_delta(start, context.counters)
        return PlanningResult(
            query=query,
            plan=plan,
            cost=cost,
            wall_time_s=watch.elapsed_s(),
            counters=delta,
            planner_name=self.name,
            batch_sizes=tuple(context.batch_sizes[batches_before:]),
        )

    def _split_level(
        self,
        size: int,
        all_tables: FrozenSet[str],
        best: Dict[FrozenSet[str], Tuple[PlanNode, Cost]],
        context: PlanningContext,
    ) -> None:
        """Cost one whole DPsize level as a single candidate batch.

        Candidates are collected in exactly the order the scalar
        ``_best_split`` loop costs them, costed in one ``cost_batch``
        call, and the per-subset champion comparisons replayed in that
        order.
        """
        graph = context.estimator.join_graph
        #: (subset, left plan, left cost, right plan, right cost,
        #: algorithm) rows, parallel to the batch.
        rows: List[Tuple] = []
        candidates = []
        for combo in itertools.combinations(sorted(all_tables), size):
            subset = frozenset(combo)
            if not graph.is_connected(subset):
                continue
            names = sorted(subset)
            # Enumerate proper subsets containing the smallest element,
            # so each unordered partition is considered exactly once.
            anchor = names[0]
            restnames = names[1:]
            for mask_size in range(0, len(restnames)):
                for picked in itertools.combinations(
                    restnames, mask_size
                ):
                    left = frozenset((anchor,) + picked)
                    right = subset - left
                    left_entry = best.get(left)
                    right_entry = best.get(right)
                    if left_entry is None or right_entry is None:
                        continue
                    if not graph.edges_between(left, right):
                        continue
                    for algorithm in JOIN_IMPLEMENTATIONS:
                        context.counters.join_costings += 1
                        rows.append(
                            (subset, *left_entry, *right_entry, algorithm)
                        )
                        candidates.append((left, right, algorithm))
        if not rows:
            return
        batch = CandidateBatch.build(candidates, context.join_io_gb)
        costed = dispatch_cost_batch(self._coster, batch, context)
        champions: Dict[FrozenSet[str], Tuple[PlanNode, Cost]] = {}
        for index, (
            subset,
            left_plan,
            left_cost,
            right_plan,
            right_cost,
            algorithm,
        ) in enumerate(rows):
            cost, resources = costed.pair(index)
            total = left_cost + right_cost + cost
            if not total.is_finite:
                continue
            champion = champions.get(subset)
            if champion is None or self._scalar(total) < self._scalar(
                champion[1]
            ):
                node = JoinNode(
                    left=left_plan,
                    right=right_plan,
                    algorithm=algorithm,
                    resources=resources,
                )
                champions[subset] = (node, total)
        best.update(champions)

    def _best_split(
        self,
        subset: FrozenSet[str],
        best: Dict[FrozenSet[str], Tuple[PlanNode, Cost]],
        context: PlanningContext,
    ) -> Optional[Tuple[PlanNode, Cost]]:
        """The cheapest (left, right) partition of ``subset``."""
        graph = context.estimator.join_graph
        names = sorted(subset)
        champion: Optional[Tuple[PlanNode, Cost]] = None
        # Enumerate proper subsets containing the smallest element, so
        # each unordered partition is considered exactly once.
        anchor = names[0]
        rest = names[1:]
        for mask_size in range(0, len(rest)):
            for picked in itertools.combinations(rest, mask_size):
                left = frozenset((anchor,) + picked)
                right = subset - left
                left_entry = best.get(left)
                right_entry = best.get(right)
                if left_entry is None or right_entry is None:
                    continue
                if not graph.edges_between(left, right):
                    continue
                left_plan, left_cost = left_entry
                right_plan, right_cost = right_entry
                for algorithm in JOIN_IMPLEMENTATIONS:  # lint: disable=RAQO010 -- the scalar reference path batched mode is verified against
                    context.counters.join_costings += 1
                    cost, resources = self._coster.join_cost(
                        left, right, algorithm, context
                    )
                    total = left_cost + right_cost + cost
                    if not total.is_finite:
                        continue
                    if champion is None or self._scalar(
                        total
                    ) < self._scalar(champion[1]):
                        node = JoinNode(
                            left=left_plan,
                            right=right_plan,
                            algorithm=algorithm,
                            resources=resources,
                        )
                        champion = (node, total)
        return champion
