"""System R (Selinger) style bottom-up join ordering for left-deep trees.

"For System R style optimization, we implemented the Selinger algorithm for
left deep trees" (Sec VII-A). Dynamic programming over connected relation
subsets: the best plan for a set is the cheapest extension of a best plan
for one of its subsets by a single base relation, considering every join
implementation. All costing goes through the
:class:`~repro.planner.cost_interface.PlanCoster` seam, so the same planner
runs as a plain query optimizer or as cost-based RAQO.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.catalog.queries import Query
from repro.planner.cost_interface import (
    Cost,
    PlanCoster,
    PlanningContext,
    PlanningCounters,
    PlanningResult,
    Stopwatch,
    ZERO_COST,
    dispatch_cost_batch,
)
from repro.planner.operators import JOIN_IMPLEMENTATIONS
from repro.planner.plan import (
    CandidateBatch,
    JoinNode,
    PlanNode,
    ScanNode,
)


class PlanningError(Exception):
    """Raised when no feasible plan exists for a query."""


class SelingerPlanner:
    """Left-deep bottom-up dynamic programming join-order optimizer.

    With ``batched`` (the default) every DP level -- all single-relation
    extensions of all connected subsets of one size -- is costed as one
    stacked :class:`~repro.planner.plan.CandidateBatch` through the
    coster's ``cost_batch`` entry point. Extensions of size-``k``
    subsets only read ``best`` entries of size ``k - 1``, so batching a
    level never reorders any observable work: candidates are collected
    and champions compared in exactly the order the per-candidate loop
    uses, making the two modes bit-identical (plans, costs, counters,
    span trees).
    """

    name = "selinger"

    def __init__(
        self,
        coster: PlanCoster,
        time_weight: float = 1.0,
        money_weight: float = 0.0,
        batched: bool = True,
    ) -> None:
        self._coster = coster
        self._time_weight = time_weight
        self._money_weight = money_weight
        self._batched = batched

    def _scalar(self, cost: Cost) -> float:
        return cost.scalar(self._time_weight, self._money_weight)

    def plan(
        self, query: Query, context: PlanningContext
    ) -> PlanningResult:
        """Optimize ``query``; returns the paper's planning metrics.

        Counters accumulate into ``context.counters`` (so across-query
        caching experiments can aggregate); the returned result carries
        only this run's deltas.
        """
        query.validate(context.estimator.catalog)
        watch = Stopwatch()
        start = dataclasses.replace(context.counters)
        batches_before = len(context.batch_sizes)

        graph = context.estimator.join_graph
        best: Dict[FrozenSet[str], Tuple[PlanNode, Cost]] = {}
        for table in query.tables:
            best[frozenset((table,))] = (ScanNode(table), ZERO_COST)

        all_tables = frozenset(query.tables)
        for size in range(2, len(query.tables) + 1):
            if self._batched:
                self._extend_level(size, all_tables, best, context)
                continue
            for combo in itertools.combinations(sorted(all_tables), size):
                subset = frozenset(combo)
                if size > 1 and not graph.is_connected(subset):
                    continue
                entry = self._best_extension(subset, best, context)
                if entry is not None:
                    best[subset] = entry

        if all_tables not in best:
            raise PlanningError(
                f"no connected left-deep plan found for query "
                f"{query.name!r}"
            )
        plan, cost = best[all_tables]
        delta = _counters_delta(start, context.counters)
        return PlanningResult(
            query=query,
            plan=plan,
            cost=cost,
            wall_time_s=watch.elapsed_s(),
            counters=delta,
            planner_name=self.name,
            batch_sizes=tuple(context.batch_sizes[batches_before:]),
        )

    def _extend_level(
        self,
        size: int,
        all_tables: FrozenSet[str],
        best: Dict[FrozenSet[str], Tuple[PlanNode, Cost]],
        context: PlanningContext,
    ) -> None:
        """Cost one whole DP level as a single candidate batch.

        Collects every (subset, extension relation, implementation)
        candidate of this level in the scalar iteration order, costs
        them in one ``cost_batch`` call, then replays the per-subset
        champion comparisons in the same order.
        """
        graph = context.estimator.join_graph
        #: (subset, rest plan, rest cost, new table, algorithm) rows,
        #: parallel to the batch.
        rows: List[
            Tuple[FrozenSet[str], PlanNode, Cost, str, "JoinAlgorithm"]  # noqa: F821
        ] = []
        candidates = []
        for combo in itertools.combinations(sorted(all_tables), size):
            subset = frozenset(combo)
            if not graph.is_connected(subset):
                continue
            for table in sorted(subset):
                rest = subset - {table}
                rest_entry = best.get(rest)
                if rest_entry is None:
                    continue
                # Left-deep: the new relation is always the right
                # input, and must actually join (no cross products).
                if not graph.edges_between(rest, {table}):
                    continue
                rest_plan, rest_cost = rest_entry
                for algorithm in JOIN_IMPLEMENTATIONS:
                    context.counters.join_costings += 1
                    rows.append(
                        (subset, rest_plan, rest_cost, table, algorithm)
                    )
                    candidates.append(
                        (rest, frozenset((table,)), algorithm)
                    )
        if not rows:
            return
        batch = CandidateBatch.build(candidates, context.join_io_gb)
        costed = dispatch_cost_batch(self._coster, batch, context)
        champions: Dict[FrozenSet[str], Tuple[PlanNode, Cost]] = {}
        for index, (subset, rest_plan, rest_cost, table, algorithm) in (
            enumerate(rows)
        ):
            cost, resources = costed.pair(index)
            total = rest_cost + cost
            if not total.is_finite:
                continue
            champion = champions.get(subset)
            if champion is None or self._scalar(total) < self._scalar(
                champion[1]
            ):
                node = JoinNode(
                    left=rest_plan,
                    right=ScanNode(table),
                    algorithm=algorithm,
                    resources=resources,
                )
                champions[subset] = (node, total)
        best.update(champions)

    def _best_extension(
        self,
        subset: FrozenSet[str],
        best: Dict[FrozenSet[str], Tuple[PlanNode, Cost]],
        context: PlanningContext,
    ) -> Optional[Tuple[PlanNode, Cost]]:
        """The cheapest way to build ``subset`` by adding one relation."""
        graph = context.estimator.join_graph
        champion: Optional[Tuple[PlanNode, Cost]] = None
        for table in sorted(subset):
            rest = subset - {table}
            rest_entry = best.get(rest)
            if rest_entry is None:
                continue
            # Left-deep: the new relation is always the right input, and
            # must actually join (no cross products).
            if not graph.edges_between(rest, {table}):
                continue
            rest_plan, rest_cost = rest_entry
            for algorithm in JOIN_IMPLEMENTATIONS:  # lint: disable=RAQO010 -- the scalar reference path batched mode is verified against
                context.counters.join_costings += 1
                cost, resources = self._coster.join_cost(
                    rest, frozenset((table,)), algorithm, context
                )
                total = rest_cost + cost
                if not total.is_finite:
                    continue
                if champion is None or self._scalar(total) < self._scalar(
                    champion[1]
                ):
                    node = JoinNode(
                        left=rest_plan,
                        right=ScanNode(table),
                        algorithm=algorithm,
                        resources=resources,
                    )
                    champion = (node, total)
        return champion


def _counters_delta(
    start: PlanningCounters, end: PlanningCounters
) -> PlanningCounters:
    """Per-run counter deltas (context counters keep accumulating)."""
    return PlanningCounters(
        **{
            f.name: getattr(end, f.name) - getattr(start, f.name)
            for f in dataclasses.fields(PlanningCounters)
        }
    )
