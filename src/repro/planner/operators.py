"""Physical operator inventory.

The paper's search space is ``n! * (a * rp * rc)^n`` where ``a`` is the
number of operator implementations (Sec VI-B). The evaluation considers
"two join operator implementations (SMJ and BHJ) and one scan
implementation (full scan)"; this module is that inventory.
"""

from __future__ import annotations

import enum
from typing import Tuple

from repro.engine.joins import JoinAlgorithm


class ScanImplementation(enum.Enum):
    """Scan implementations (the paper evaluates only full scans)."""

    FULL_SCAN = "full_scan"

    def __str__(self) -> str:
        return self.value


#: Join implementations considered by the planners, in preference order.
JOIN_IMPLEMENTATIONS: Tuple[JoinAlgorithm, ...] = (
    JoinAlgorithm.SORT_MERGE,
    JoinAlgorithm.BROADCAST_HASH,
)

#: Scan implementations considered by the planners.
SCAN_IMPLEMENTATIONS: Tuple[ScanImplementation, ...] = (
    ScanImplementation.FULL_SCAN,
)

#: The paper's ``a``: operator implementation alternatives per join.
NUM_JOIN_IMPLEMENTATIONS = len(JOIN_IMPLEMENTATIONS)


def search_space_size(
    num_relations: int,
    num_container_counts: int,
    num_container_sizes: int,
    independent_operators: bool = True,
) -> float:
    """The paper's Sec VI-B search-space formulas.

    With ``independent_operators=False`` this is the full joint space
    ``n! * (a * rp * rc)^n``; with the paper's per-operator independence
    assumption it collapses to ``n! * a * n * rp * rc``.
    """
    if num_relations < 1:
        raise ValueError(
            f"num_relations must be >= 1, got {num_relations}"
        )
    factorial = 1.0
    for i in range(2, num_relations + 1):
        factorial *= i
    per_operator = (
        NUM_JOIN_IMPLEMENTATIONS
        * num_container_counts
        * num_container_sizes
    )
    if independent_operators:
        return factorial * per_operator * num_relations
    return factorial * per_operator**num_relations
