"""Physical plan trees: scans and binary joins, with per-operator resources.

A plan is an immutable binary tree. Each join node carries its physical
implementation (:class:`~repro.engine.joins.JoinAlgorithm`) and, once RAQO
has planned it, a per-operator
:class:`~repro.cluster.containers.ResourceConfiguration` -- the paper's
joint query/resource plan ("the optimizer ... emits a joint query and
resource plan, which contains both the operator DAG ... and the resources
to be requested to the RM for each operator in the DAG", Sec IV).
"""

from __future__ import annotations

import dataclasses
import types
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.cluster.containers import ResourceConfiguration
from repro.engine.joins import JoinAlgorithm

#: Stable operator codes for the struct-of-arrays candidate batch
#: (enum order is part of the planner's deterministic iteration order).
#: Read-only so worker threads can share it without a lock.
ALGORITHM_CODES: Mapping[JoinAlgorithm, int] = types.MappingProxyType(
    dict((algorithm, code) for code, algorithm in enumerate(JoinAlgorithm))
)


class PlanError(Exception):
    """Raised for malformed plan trees."""


@dataclass(frozen=True)
class PlanNode:
    """Base class for plan tree nodes."""

    @property
    def tables(self) -> FrozenSet[str]:
        """All base tables under this node."""
        raise NotImplementedError

    @property
    def is_join(self) -> bool:
        """True for join nodes."""
        return isinstance(self, JoinNode)

    def joins_postorder(self) -> Iterator["JoinNode"]:
        """All join nodes below (and including) this one, children first."""
        if isinstance(self, JoinNode):
            yield from self.left.joins_postorder()
            yield from self.right.joins_postorder()
            yield self

    def scans(self) -> Iterator["ScanNode"]:
        """All scan leaves, left to right."""
        if isinstance(self, ScanNode):
            yield self
        elif isinstance(self, JoinNode):
            yield from self.left.scans()
            yield from self.right.scans()

    @property
    def num_joins(self) -> int:
        """Number of join nodes in the subtree."""
        return sum(1 for _ in self.joins_postorder())

    def map_joins(
        self, transform: Callable[["JoinNode"], "JoinNode"]
    ) -> "PlanNode":
        """Rebuild the tree, applying ``transform`` to each join bottom-up.

        ``transform`` receives a join node whose children have already been
        transformed, and must return a join node over the same children.
        """
        if isinstance(self, ScanNode):
            return self
        if isinstance(self, JoinNode):
            rebuilt = dataclasses.replace(
                self,
                left=self.left.map_joins(transform),
                right=self.right.map_joins(transform),
            )
            result = transform(rebuilt)
            if result.tables != self.tables:
                raise PlanError(
                    "map_joins transform changed the table set "
                    f"({sorted(self.tables)} -> {sorted(result.tables)})"
                )
            return result
        raise PlanError(f"unknown node type {type(self).__name__}")

    def explain(self, indent: int = 0) -> str:
        """A readable multi-line rendering of the plan."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.explain()


@dataclass(frozen=True)
class ScanNode(PlanNode):
    """A full scan of one base table."""

    table: str

    def __post_init__(self) -> None:
        if not self.table:
            raise PlanError("scan table name must be non-empty")

    @property
    def tables(self) -> FrozenSet[str]:
        return frozenset((self.table,))

    def explain(self, indent: int = 0) -> str:
        return " " * indent + f"Scan({self.table})"


@dataclass(frozen=True)
class JoinNode(PlanNode):
    """A binary join with an implementation and (optionally) resources.

    By convention the *build/broadcast* side of a BHJ is whichever input
    is smaller -- the simulator and cost models take (smaller, larger)
    sizes, so left/right order encodes join order, not build side.
    """

    left: PlanNode
    right: PlanNode
    algorithm: JoinAlgorithm = JoinAlgorithm.SORT_MERGE
    resources: Optional[ResourceConfiguration] = None

    def __post_init__(self) -> None:
        overlap = self.left.tables & self.right.tables
        if overlap:
            raise PlanError(
                f"join children overlap on tables {sorted(overlap)}"
            )

    @property
    def tables(self) -> FrozenSet[str]:
        return self.left.tables | self.right.tables

    def with_algorithm(self, algorithm: JoinAlgorithm) -> "JoinNode":
        """A copy using a different join implementation."""
        return dataclasses.replace(self, algorithm=algorithm)

    def with_resources(
        self, resources: Optional[ResourceConfiguration]
    ) -> "JoinNode":
        """A copy annotated with a per-operator resource configuration."""
        return dataclasses.replace(self, resources=resources)

    def explain(self, indent: int = 0) -> str:
        pad = " " * indent
        resources = f" @ {self.resources}" if self.resources else ""
        lines = [
            f"{pad}{self.algorithm.name}{resources}",
            self.left.explain(indent + 2),
            self.right.explain(indent + 2),
        ]
        return "\n".join(lines)


@dataclass(frozen=True)
class CandidateBatch:
    """A struct-of-arrays batch of join candidates awaiting costing.

    One entry per (left input, right input, join implementation) triple,
    in the exact order the planner would have costed them one at a time
    -- batched costing replays this order, which is what keeps champion
    selection (and therefore the chosen plans) bit-identical to the
    scalar path. The numeric columns are parallel numpy arrays so a
    coster can feed a whole DP level (or a whole bushy plan's joins)
    into one stacked kernel call; the table sets stay as Python
    frozensets for plan reconstruction.
    """

    #: Per-candidate table sets (parallel to the arrays below).
    left_tables: Tuple[FrozenSet[str], ...]
    right_tables: Tuple[FrozenSet[str], ...]
    algorithms: Tuple[JoinAlgorithm, ...]
    #: Operator codes (``ALGORITHM_CODES``) as one int array.
    algorithm_codes: np.ndarray
    #: Candidate (smaller, larger) input sizes in GB.
    small_gb: np.ndarray
    large_gb: np.ndarray

    @classmethod
    def build(
        cls,
        candidates: Sequence[
            Tuple[FrozenSet[str], FrozenSet[str], JoinAlgorithm]
        ],
        join_io_gb: Callable[
            [FrozenSet[str], FrozenSet[str]], Tuple[float, float]
        ],
    ) -> "CandidateBatch":
        """Assemble a batch, deriving sizes via ``join_io_gb``.

        ``join_io_gb`` is typically
        :meth:`~repro.planner.cost_interface.PlanningContext.join_io_gb`;
        it is a pure function of the (left, right) pair, so the batch
        evaluates it once per distinct pair (planners enumerate every
        join implementation per pair, so this saves a constant factor
        of ``len(JoinAlgorithm)`` without changing any value).
        """
        lefts: List[FrozenSet[str]] = []
        rights: List[FrozenSet[str]] = []
        algorithms: List[JoinAlgorithm] = []
        codes: List[int] = []
        small: List[float] = []
        large: List[float] = []
        sizes: Dict[
            Tuple[FrozenSet[str], FrozenSet[str]], Tuple[float, float]
        ] = {}
        for left, right, algorithm in candidates:
            lefts.append(left)
            rights.append(right)
            algorithms.append(algorithm)
            codes.append(ALGORITHM_CODES[algorithm])
            pair = (left, right)
            io_gb = sizes.get(pair)
            if io_gb is None:
                io_gb = join_io_gb(left, right)
                sizes[pair] = io_gb
            ss, ls = io_gb
            small.append(ss)
            large.append(ls)
        return cls(
            left_tables=tuple(lefts),
            right_tables=tuple(rights),
            algorithms=tuple(algorithms),
            algorithm_codes=np.asarray(codes, dtype=np.int8),
            small_gb=np.asarray(small, dtype=float),
            large_gb=np.asarray(large, dtype=float),
        )

    def __len__(self) -> int:
        return len(self.algorithms)


def left_deep_plan(
    tables: Sequence[str],
    algorithms: Optional[Sequence[JoinAlgorithm]] = None,
) -> PlanNode:
    """Build a left-deep plan joining ``tables`` in the given order.

    ``algorithms[i]`` is the implementation of the i-th join from the
    bottom; defaults to SMJ everywhere.
    """
    if not tables:
        raise PlanError("cannot build a plan over zero tables")
    if algorithms is not None and len(algorithms) != len(tables) - 1:
        raise PlanError(
            f"need {len(tables) - 1} algorithms, got {len(algorithms)}"
        )
    node: PlanNode = ScanNode(tables[0])
    for index, table in enumerate(tables[1:]):
        algorithm = (
            algorithms[index]
            if algorithms is not None
            else JoinAlgorithm.SORT_MERGE
        )
        node = JoinNode(
            left=node, right=ScanNode(table), algorithm=algorithm
        )
    return node


def plan_signature(node: PlanNode) -> Tuple:
    """A hashable structural signature (for dedup in randomized search)."""
    if isinstance(node, ScanNode):
        return ("scan", node.table)
    if isinstance(node, JoinNode):
        return (
            "join",
            node.algorithm.value,
            plan_signature(node.left),
            plan_signature(node.right),
        )
    raise PlanError(f"unknown node type {type(node).__name__}")


def join_order(node: PlanNode) -> List[str]:
    """The base-table order of the plan's leaves, left to right."""
    return [scan.table for scan in node.scans()]
