"""The costing seam between query planners and (resource-aware) cost models.

The paper integrates resource planning into query planning through a single
method: "we extended the ``getPlanCost`` method of our cost model to first
perform the resource planning (or lookup in the cache) and then return the
sub-plan cost" (Sec VI-C). :class:`PlanCoster` is that seam: both the
Selinger and the FastRandomized planner only ever talk to a coster, so the
plain query optimizer (fixed resources) and cost-based RAQO (per-operator
resource planning) are interchangeable.

:class:`PlanningContext` carries everything a costing call may need --
catalog statistics, current cluster conditions -- and the counters the
paper's evaluation reports (#resource configurations explored, planner
wall-clock time).
"""

from __future__ import annotations

import dataclasses
import math
import time
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    TypeVar,
)

import numpy as np

from repro.catalog.queries import Query
from repro.catalog.statistics import StatisticsEstimator
from repro.units import GB
from repro.cluster.cluster import ClusterConditions
from repro.engine.joins import JoinAlgorithm
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.planner.plan import CandidateBatch, JoinNode, PlanNode

#: The payload carried alongside a :class:`Cost` in frontier entries
#: (a plan, a configuration tuple -- :func:`frontier` never inspects it).
T = TypeVar("T")


@dataclass(frozen=True)
class Cost:
    """A multi-objective plan cost: execution time and monetary cost.

    Planners minimizing a single objective use :meth:`scalar`; the
    multi-objective FastRandomized planner uses Pareto :meth:`dominates`.
    """

    time_s: float
    money: float = 0.0

    def __add__(self, other: "Cost") -> "Cost":
        return Cost(self.time_s + other.time_s, self.money + other.money)

    def scalar(self, time_weight: float = 1.0, money_weight: float = 0.0) -> float:
        """Weighted scalarisation of the cost vector."""
        return time_weight * self.time_s + money_weight * self.money

    def dominates(self, other: "Cost") -> bool:
        """Strict Pareto dominance: no worse in both, strictly better in one.

        The boundary case matters: a cost that is *equal* to ``other``
        in both objectives does **not** dominate it -- dominance is
        irreflexive (``c.dominates(c)`` is always ``False``).  Weak
        dominance (``<=`` in both without the strict clause) would let
        two equal costs eliminate each other, leaving Pareto frontiers
        dependent on comparison order; every frontier in this codebase
        (:func:`frontier`, the skyline pass in :mod:`repro.core.pareto`,
        and the randomized planner's approximate frontier) builds on the
        strict form.
        """
        return (
            self.time_s <= other.time_s
            and self.money <= other.money
            and (self.time_s < other.time_s or self.money < other.money)
        )

    @property
    def is_finite(self) -> bool:
        """False when the plan is infeasible under the given resources."""
        return math.isfinite(self.time_s) and math.isfinite(self.money)


def frontier(
    entries: Sequence[Tuple[T, Cost]],
) -> List[Tuple[T, Cost]]:
    """The exact Pareto frontier of ``(item, cost)`` pairs.

    Returns the pairs no other entry :meth:`Cost.dominates`, sorted by
    ascending ``time_s`` (and therefore strictly descending ``money``).
    Infeasible costs are dropped.  When several entries carry exactly
    equal ``(time_s, money)`` vectors -- none dominates the others --
    only the first in input order survives, so the result is
    deterministic and duplicate-free regardless of how candidates were
    enumerated.

    This is the single reference implementation both Pareto consumers
    defer to: the randomized planner's
    :meth:`~repro.planner.randomized.ParetoFrontier.entries` and the
    scalar tail of the vectorized skyline pass in
    :mod:`repro.core.pareto`, so the two cannot drift.
    """
    ordered = sorted(
        (cost.time_s, cost.money, index)
        for index, (_, cost) in enumerate(entries)
        if cost.is_finite
    )
    kept: List[int] = []
    best_money = math.inf
    for _, money, index in ordered:
        # Sorted by (time, money, input order): a strict money
        # improvement is exactly non-domination by everything earlier;
        # ties in both objectives fall to the first-seen entry.
        if money < best_money:
            kept.append(index)
            best_money = money
    return [entries[index] for index in kept]


#: The cost of an infeasible sub-plan (e.g. BHJ past its OOM wall).
INFEASIBLE_COST = Cost(time_s=math.inf, money=math.inf)

#: Free sub-plans (scan leaves; scans are folded into the join models).
ZERO_COST = Cost(time_s=0.0, money=0.0)


@dataclass
class PlanningCounters:
    """The accounting the paper's Figs 12-15 report."""

    #: Cost-model invocations made while exploring resource configurations
    #: (the paper's "#Resource-Iterations").
    resource_iterations: int = 0
    #: Individual join-operator costings requested by the query planner.
    join_costings: int = 0
    #: Resource plan cache hits / misses (Fig 14).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Within-run memo hits: identical (algorithm, ss, ls) costings
    #: served without touching the resource planner or the plan cache.
    memo_hits: int = 0
    #: Candidate batches submitted through the batched costing entry
    #: point (one per DP level / per whole-plan costing).
    batched_calls: int = 0
    #: Memo hits served during batch-aware partitioning, before the
    #: stacked kernel ran (a subset of ``memo_hits``).
    batch_memo_hits: int = 0
    #: Candidate (stage x configuration) points discarded by the
    #: Pareto skyline passes of :mod:`repro.core.pareto` because some
    #: other candidate dominated them (or duplicated them exactly).
    dominated_pruned: int = 0
    #: Points on the Pareto frontiers computed during this run.
    frontier_points: int = 0

    def merge(self, other: "PlanningCounters") -> None:
        """Accumulate another counter set into this one."""
        for counter_field in dataclasses.fields(self):
            name = counter_field.name
            setattr(
                self, name, getattr(self, name) + getattr(other, name)
            )


@dataclass
class PlanningContext:
    """Catalog, cluster conditions, and counters for one planning run."""

    estimator: StatisticsEstimator
    cluster: ClusterConditions
    counters: PlanningCounters = field(default_factory=PlanningCounters)
    #: Per-run scratch space for the RAQO coster's sub-plan memo: one
    #: planning run = one context = one memo lifetime, so entries can
    #: never leak across queries or changed cluster conditions.
    resource_plan_memo: Dict[Tuple, object] = field(default_factory=dict)
    #: Observability sink for this planning run; the shared null tracer
    #: by default, so uninstrumented callers pay one attribute check.
    tracer: Tracer = NULL_TRACER
    #: Sizes of the candidate batches costed during this run (feeds the
    #: session's ``planner.batch_size`` histogram).
    batch_sizes: List[int] = field(default_factory=list)

    def join_io_gb(
        self, left_tables: Iterable[str], right_tables: Iterable[str]
    ) -> Tuple[GB, GB]:
        """(smaller, larger) input sizes in GB for a candidate join."""
        return self.estimator.join_io_gb(left_tables, right_tables)


class PlanCoster(Protocol):
    """What a query planner needs from a cost model.

    Implementations: the plain query-optimizer coster (fixed default
    resources) and the RAQO coster (per-operator resource planning);
    see :mod:`repro.core.raqo`.
    """

    def join_cost(
        self,
        left_tables: FrozenSet[str],
        right_tables: FrozenSet[str],
        algorithm: JoinAlgorithm,
        context: PlanningContext,
    ) -> Tuple[Cost, Optional["ResourceConfiguration"]]:  # noqa: F821
        """Cost one join operator; optionally return planned resources."""
        ...

    def cost_batch(
        self, batch: CandidateBatch, context: PlanningContext
    ) -> "BatchCostResult":
        """Cost a whole candidate batch; see :class:`BatchCostResult`."""
        ...


@dataclass(frozen=True)
class BatchCostResult:
    """Per-candidate costs for one :class:`CandidateBatch`, as parallel
    arrays (struct-of-arrays, mirroring the batch itself).

    ``time_s``/``money`` hold the exact float values the scalar
    ``join_cost`` path would have produced (``inf`` for infeasible
    candidates); ``feasible`` is the derived mask; ``configs`` carries
    the planned per-operator resources (``None`` for infeasible
    candidates and for costers that do not plan resources).
    """

    time_s: np.ndarray
    money: np.ndarray
    feasible: np.ndarray
    configs: Tuple[Optional["ResourceConfiguration"], ...]  # noqa: F821

    def pair(
        self, index: int
    ) -> Tuple[Cost, Optional["ResourceConfiguration"]]:  # noqa: F821
        """Candidate ``index`` in ``join_cost`` return form."""
        return (
            Cost(
                time_s=float(self.time_s[index]),
                money=float(self.money[index]),
            ),
            self.configs[index],
        )

    def __len__(self) -> int:
        return len(self.configs)


def cost_batch_scalar(
    coster: PlanCoster,
    batch: CandidateBatch,
    context: PlanningContext,
) -> BatchCostResult:
    """The reference ``cost_batch``: per-candidate ``join_cost`` calls.

    Costers without a stacked kernel (the fixed-resource baseline, hill
    climbing) implement the batched protocol by delegating here, so
    planners can stay on the batch API unconditionally. Candidates run
    in batch order -- identical to the scalar planner loop, spans and
    counters included.
    """
    context.counters.batched_calls += 1
    context.batch_sizes.append(len(batch))
    times = np.empty(len(batch))
    money = np.empty(len(batch))
    configs: List[Optional["ResourceConfiguration"]] = []  # noqa: F821
    for index in range(len(batch)):  # lint: disable=RAQO010 -- this *is* the scalar reference path batched costers fall back to
        cost, config = coster.join_cost(
            batch.left_tables[index],
            batch.right_tables[index],
            batch.algorithms[index],
            context,
        )
        times[index] = cost.time_s
        money[index] = cost.money
        configs.append(config)
    feasible = np.isfinite(times) & np.isfinite(money)
    return BatchCostResult(
        time_s=times,
        money=money,
        feasible=feasible,
        configs=tuple(configs),
    )


def dispatch_cost_batch(
    coster: PlanCoster,
    batch: CandidateBatch,
    context: PlanningContext,
) -> BatchCostResult:
    """Route a batch to ``coster.cost_batch``, or the scalar reference.

    The batched planners call this instead of ``coster.cost_batch``
    directly so that minimal :class:`PlanCoster` implementations (test
    doubles, ad-hoc costers exposing only ``join_cost``) keep working:
    they are costed through :func:`cost_batch_scalar`, which is
    bit-identical to the per-candidate loop.
    """
    cost_batch = getattr(coster, "cost_batch", None)
    if cost_batch is None:
        return cost_batch_scalar(coster, batch, context)
    return cost_batch(batch, context)


def get_plan_cost(
    plan: PlanNode, coster: PlanCoster, context: PlanningContext
) -> Tuple[PlanNode, Cost]:
    """Cost a whole plan; returns the plan annotated with resources.

    The total cost of a plan is the sum of its join operators' costs
    (Sec VI-A: "the total cost of a query plan is the sum of costs of all
    join operators in that plan"). Joins are costed bottom-up and each
    join node is annotated with the resources the coster picked.
    """
    total = ZERO_COST

    def cost_one(join: JoinNode) -> JoinNode:
        nonlocal total
        cost, resources = coster.join_cost(
            join.left.tables, join.right.tables, join.algorithm, context
        )
        total = total + cost
        return join.with_resources(resources)

    annotated = plan.map_joins(cost_one)
    return annotated, total


def get_plan_cost_batched(
    plan: PlanNode, coster: PlanCoster, context: PlanningContext
) -> Tuple[PlanNode, Cost]:
    """:func:`get_plan_cost` through one ``cost_batch`` call.

    All of the plan's joins are gathered (in the same bottom-up order
    ``map_joins`` costs them) into one :class:`CandidateBatch`, costed
    in a single batched call, and folded back onto the tree. The
    per-join costs, their summation order, and the annotated resources
    are identical to the scalar path, so the two entry points return
    bit-identical results.
    """
    joins = list(plan.joins_postorder())
    if not joins:
        return plan, ZERO_COST
    batch = CandidateBatch.build(
        [
            (join.left.tables, join.right.tables, join.algorithm)
            for join in joins
        ],
        context.join_io_gb,
    )
    result = dispatch_cost_batch(coster, batch, context)
    total = ZERO_COST
    indexes = iter(range(len(joins)))

    def cost_one(join: JoinNode) -> JoinNode:
        nonlocal total
        cost, resources = result.pair(next(indexes))
        total = total + cost
        return join.with_resources(resources)

    annotated = plan.map_joins(cost_one)
    return annotated, total


@dataclass(frozen=True)
class PlanningResult:
    """The outcome of one optimizer run, with the paper's metrics."""

    query: Query
    plan: PlanNode
    cost: Cost
    wall_time_s: float
    counters: PlanningCounters
    planner_name: str
    #: Candidate-batch sizes this run pushed through ``cost_batch``
    #: (empty on the scalar path); feeds the session batch histogram.
    batch_sizes: Tuple[int, ...] = ()

    @property
    def resource_iterations(self) -> int:
        """Shorthand for the headline Fig 12/13 metric."""
        return self.counters.resource_iterations


class Stopwatch:
    """Tiny wall-clock helper so planners report comparable timings."""

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def elapsed_s(self) -> float:
        """Seconds since construction."""
        return time.perf_counter() - self._start
