"""The costing seam between query planners and (resource-aware) cost models.

The paper integrates resource planning into query planning through a single
method: "we extended the ``getPlanCost`` method of our cost model to first
perform the resource planning (or lookup in the cache) and then return the
sub-plan cost" (Sec VI-C). :class:`PlanCoster` is that seam: both the
Selinger and the FastRandomized planner only ever talk to a coster, so the
plain query optimizer (fixed resources) and cost-based RAQO (per-operator
resource planning) are interchangeable.

:class:`PlanningContext` carries everything a costing call may need --
catalog statistics, current cluster conditions -- and the counters the
paper's evaluation reports (#resource configurations explored, planner
wall-clock time).
"""

from __future__ import annotations

import dataclasses
import math
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Protocol, Tuple

from repro.catalog.queries import Query
from repro.catalog.statistics import StatisticsEstimator
from repro.cluster.cluster import ClusterConditions
from repro.engine.joins import JoinAlgorithm
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.planner.plan import JoinNode, PlanNode


@dataclass(frozen=True)
class Cost:
    """A multi-objective plan cost: execution time and monetary cost.

    Planners minimizing a single objective use :meth:`scalar`; the
    multi-objective FastRandomized planner uses Pareto :meth:`dominates`.
    """

    time_s: float
    money: float = 0.0

    def __add__(self, other: "Cost") -> "Cost":
        return Cost(self.time_s + other.time_s, self.money + other.money)

    def scalar(self, time_weight: float = 1.0, money_weight: float = 0.0) -> float:
        """Weighted scalarisation of the cost vector."""
        return time_weight * self.time_s + money_weight * self.money

    def dominates(self, other: "Cost") -> bool:
        """Pareto dominance: no worse in both objectives, better in one."""
        return (
            self.time_s <= other.time_s
            and self.money <= other.money
            and (self.time_s < other.time_s or self.money < other.money)
        )

    @property
    def is_finite(self) -> bool:
        """False when the plan is infeasible under the given resources."""
        return math.isfinite(self.time_s) and math.isfinite(self.money)


#: The cost of an infeasible sub-plan (e.g. BHJ past its OOM wall).
INFEASIBLE_COST = Cost(time_s=math.inf, money=math.inf)

#: Free sub-plans (scan leaves; scans are folded into the join models).
ZERO_COST = Cost(time_s=0.0, money=0.0)


@dataclass
class PlanningCounters:
    """The accounting the paper's Figs 12-15 report."""

    #: Cost-model invocations made while exploring resource configurations
    #: (the paper's "#Resource-Iterations").
    resource_iterations: int = 0
    #: Individual join-operator costings requested by the query planner.
    join_costings: int = 0
    #: Resource plan cache hits / misses (Fig 14).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Within-run memo hits: identical (algorithm, ss, ls) costings
    #: served without touching the resource planner or the plan cache.
    memo_hits: int = 0

    def merge(self, other: "PlanningCounters") -> None:
        """Accumulate another counter set into this one."""
        for counter_field in dataclasses.fields(self):
            name = counter_field.name
            setattr(
                self, name, getattr(self, name) + getattr(other, name)
            )


@dataclass
class PlanningContext:
    """Catalog, cluster conditions, and counters for one planning run."""

    estimator: StatisticsEstimator
    cluster: ClusterConditions
    counters: PlanningCounters = field(default_factory=PlanningCounters)
    #: Per-run scratch space for the RAQO coster's sub-plan memo: one
    #: planning run = one context = one memo lifetime, so entries can
    #: never leak across queries or changed cluster conditions.
    resource_plan_memo: Dict[Tuple, object] = field(default_factory=dict)
    #: Observability sink for this planning run; the shared null tracer
    #: by default, so uninstrumented callers pay one attribute check.
    tracer: Tracer = NULL_TRACER

    def join_io_gb(
        self, left_tables: Iterable[str], right_tables: Iterable[str]
    ) -> Tuple[float, float]:
        """(smaller, larger) input sizes in GB for a candidate join."""
        return self.estimator.join_io_gb(left_tables, right_tables)


class PlanCoster(Protocol):
    """What a query planner needs from a cost model.

    Implementations: the plain query-optimizer coster (fixed default
    resources) and the RAQO coster (per-operator resource planning);
    see :mod:`repro.core.raqo`.
    """

    def join_cost(
        self,
        left_tables: FrozenSet[str],
        right_tables: FrozenSet[str],
        algorithm: JoinAlgorithm,
        context: PlanningContext,
    ) -> Tuple[Cost, Optional["ResourceConfiguration"]]:  # noqa: F821
        """Cost one join operator; optionally return planned resources."""
        ...


def get_plan_cost(
    plan: PlanNode, coster: PlanCoster, context: PlanningContext
) -> Tuple[PlanNode, Cost]:
    """Cost a whole plan; returns the plan annotated with resources.

    The total cost of a plan is the sum of its join operators' costs
    (Sec VI-A: "the total cost of a query plan is the sum of costs of all
    join operators in that plan"). Joins are costed bottom-up and each
    join node is annotated with the resources the coster picked.
    """
    total = ZERO_COST

    def cost_one(join: JoinNode) -> JoinNode:
        nonlocal total
        cost, resources = coster.join_cost(
            join.left.tables, join.right.tables, join.algorithm, context
        )
        total = total + cost
        return join.with_resources(resources)

    annotated = plan.map_joins(cost_one)
    return annotated, total


@dataclass(frozen=True)
class PlanningResult:
    """The outcome of one optimizer run, with the paper's metrics."""

    query: Query
    plan: PlanNode
    cost: Cost
    wall_time_s: float
    counters: PlanningCounters
    planner_name: str

    @property
    def resource_iterations(self) -> int:
        """Shorthand for the headline Fig 12/13 metric."""
        return self.counters.resource_iterations


class Stopwatch:
    """Tiny wall-clock helper so planners report comparable timings."""

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def elapsed_s(self) -> float:
        """Seconds since construction."""
        return time.perf_counter() - self._start
