"""Query planners and plan representations.

Two planners, matching the paper's Sec VII evaluation:

- :mod:`repro.planner.selinger` -- the traditional System R style
  bottom-up join ordering algorithm (left-deep dynamic programming).
- :mod:`repro.planner.randomized` -- the FastRandomized multi-objective
  planner of Trummer & Koch (SIGMOD 2016), re-implemented as in the paper
  with associativity and exchange mutations.

Both planners cost candidate sub-plans exclusively through the
:class:`~repro.planner.cost_interface.PlanCoster` seam, which is where
cost-based RAQO plugs in resource planning (Sec VI-C).
"""

from repro.planner.bushy import BushyPlanner
from repro.planner.cost_interface import (
    Cost,
    PlanCoster,
    PlanningContext,
    PlanningResult,
)
from repro.planner.plan import JoinNode, PlanNode, ScanNode
from repro.planner.randomized import FastRandomizedPlanner
from repro.planner.selinger import SelingerPlanner

__all__ = [
    "BushyPlanner",
    "Cost",
    "FastRandomizedPlanner",
    "JoinNode",
    "PlanCoster",
    "PlanNode",
    "PlanningContext",
    "PlanningResult",
    "ScanNode",
    "SelingerPlanner",
]
