"""Ablation: planning the third resource dimension (tasks per vertex).

The paper's resource configuration includes "the total number of
containers per DAG vertex, i.e., the total tasks per vertex" -- the
reducer count. The main experiments use the engine's automatic heuristic
("those gave us close to optimal performance"); this ablation quantifies
that claim: across a data-resource grid, how much does planning the
reducer count explicitly buy over the heuristic?
"""

from _bench_utils import run_once

from repro.cluster.containers import ResourceConfiguration
from repro.core.reducer_planner import plan_reducers
from repro.engine.profiles import HIVE_PROFILE
from repro.experiments.report import format_table


def _sweep():
    rows = []
    for ss in (1.0, 3.0, 6.0):
        for nc in (5, 10, 40):
            for cs in (2.0, 6.0):
                config = ResourceConfiguration(
                    num_containers=nc, container_gb=cs
                )
                plan = plan_reducers(ss, 77.0, config, HIVE_PROFILE)
                rows.append(
                    (
                        ss,
                        str(config),
                        plan.auto_reducers,
                        plan.num_reducers,
                        plan.auto_time_s,
                        plan.time_s,
                        plan.improvement_over_auto,
                    )
                )
    return rows


def test_ablation_reducer_planning(benchmark):
    rows = run_once(benchmark, _sweep)
    print()
    print(
        format_table(
            [
                "ss (GB)",
                "config",
                "auto nr",
                "planned nr",
                "auto (s)",
                "planned (s)",
                "speedup",
            ],
            rows,
            title="Ablation: reducer-count planning vs the auto heuristic",
        )
    )
    speedups = [row[-1] for row in rows]
    mean_speedup = sum(speedups) / len(speedups)
    print(
        f"mean speedup {mean_speedup:.3f}x -- the paper's 'close to "
        "optimal' claim for the auto heuristic holds when it does not "
        "exceed a few percent"
    )
    benchmark.extra_info["mean_reducer_speedup"] = mean_speedup
    # Planning never loses, and the auto heuristic is indeed close.
    assert all(speedup >= 1.0 for speedup in speedups)
    assert mean_speedup < 1.25
