"""Fig 11 benchmark: the learned RAQO decision trees.

Paper figure: CART trees over the data-resource space, branching on data
size, container size, and container counts; max path length 6 (Hive) and
7 (Spark).
"""

from _bench_utils import run_once

from repro.engine.profiles import HIVE_PROFILE, SPARK_PROFILE
from repro.experiments import fig11_raqo_trees


def _report(benchmark, result):
    print()
    print(f"Fig 11 ({result.engine}): RAQO decision tree")
    print(result.rule.export_text())
    print(
        f"samples={result.num_samples} "
        f"accuracy={result.training_accuracy:.3f} "
        f"max path={result.max_path_length} leaves={result.num_leaves}"
    )
    benchmark.extra_info[f"{result.engine}_accuracy"] = (
        result.training_accuracy
    )
    benchmark.extra_info[f"{result.engine}_max_path"] = (
        result.max_path_length
    )


def test_fig11_hive_tree(benchmark):
    result = run_once(benchmark, fig11_raqo_trees.run, HIVE_PROFILE)
    _report(benchmark, result)
    assert result.training_accuracy >= 0.95
    assert result.max_path_length <= 7

def test_fig11_spark_tree(benchmark):
    result = run_once(benchmark, fig11_raqo_trees.run, SPARK_PROFILE)
    _report(benchmark, result)
    assert result.training_accuracy >= 0.95
    assert result.max_path_length <= 7
