"""Fig 12 benchmark: RAQO planning on the TPC-H schema.

Paper series: planner runtime and #resource configurations explored for
Q12/Q3/Q2/All under the FastRandomized and Selinger planners, with and
without resource planning. The paper reports >0.5M configurations
explored for the FastRandomized All query.
"""

from _bench_utils import run_once

from repro.experiments import fig12_tpch_planning
from repro.experiments.report import format_table


def test_fig12_tpch_planning(benchmark):
    result = run_once(benchmark, fig12_tpch_planning.run)
    print()
    print(
        format_table(
            [
                "query",
                "planner",
                "QO (ms)",
                "RAQO (ms)",
                "overhead",
                "#resource iters",
            ],
            [
                (
                    r.query,
                    r.planner,
                    r.qo_runtime_ms,
                    r.raqo_runtime_ms,
                    f"{r.overhead:.1f}x",
                    r.resource_iterations,
                )
                for r in result.rows
            ],
            title="Fig 12: RAQO planning on TPC-H (SF 100)",
        )
    )
    all_fr = result.row("All", "fast_randomized")
    print(
        "FastRandomized All explores "
        f"{all_fr.resource_iterations} resource configurations "
        "(paper: more than half a million)"
    )
    benchmark.extra_info["fr_all_resource_iterations"] = (
        all_fr.resource_iterations
    )
    assert all_fr.resource_iterations > 100_000
    for row in result.rows:
        assert row.raqo_runtime_ms >= row.qo_runtime_ms
