"""Fig 15 benchmark: RAQO scalability over schema size and cluster size.

Paper series: (a) planner runtimes over query sizes on the random
100-table schema for QO, RAQO, and RAQO with plan caching (cached RAQO
~6x faster than non-cached, ~1.29x over plain QO); (b) planner runtimes
over cluster conditions from 100 to 100K containers, with across-query
caching helping ~30% at the largest scales.

The default sweep sizes keep the pure-Python run in benchmark range; the
drivers accept the paper's full 100-relation sweep via parameters.
"""

from _bench_utils import run_once

from repro.experiments import fig15_scalability
from repro.experiments.report import format_table


def test_fig15a_schema_scaling(benchmark):
    result = run_once(benchmark, fig15_scalability.run_schema_scaling)
    print()
    print(
        format_table(
            [
                "query size",
                "QO (ms)",
                "RAQO (ms)",
                "RAQO+cache (ms)",
                "RAQO iters",
                "cached iters",
            ],
            [
                (
                    p.query_size,
                    p.qo_ms,
                    p.raqo_ms,
                    p.raqo_cached_ms,
                    p.raqo_iterations,
                    p.raqo_cached_iterations,
                )
                for p in result.points
            ],
            title="Fig 15(a): scalability over schema size",
        )
    )
    print(
        f"cache speedup {result.mean_cache_speedup:.1f}x (paper ~6x) | "
        f"overhead vs QO {result.mean_overhead_vs_qo:.2f}x (paper 1.29x)"
    )
    benchmark.extra_info["cache_speedup"] = result.mean_cache_speedup
    benchmark.extra_info["overhead_vs_qo"] = result.mean_overhead_vs_qo
    assert result.mean_cache_speedup > 2.0


def test_fig15b_resource_scaling(benchmark):
    result = run_once(
        benchmark, fig15_scalability.run_resource_scaling
    )
    print()
    print(
        format_table(
            [
                "max containers",
                "max GB",
                "QO (ms)",
                "RAQO (ms)",
                "across-query (ms)",
                "RAQO iters",
            ],
            [
                (
                    p.max_containers,
                    p.max_container_gb,
                    p.qo_ms,
                    p.raqo_ms,
                    p.raqo_across_query_ms,
                    p.raqo_iterations,
                )
                for p in result.points
            ],
            title="Fig 15(b): scalability over cluster conditions",
        )
    )
    gain = result.across_query_gain_at_scale()
    print(
        f"across-query caching gain at >=10K containers: {gain:.2f}x "
        "(paper: ~1.3x)"
    )
    benchmark.extra_info["across_query_gain"] = gain
    iterations = [p.raqo_iterations for p in result.points]
    assert iterations[-1] > iterations[0]
