"""Planning-throughput benchmark: scalar vs vectorized vs memoized.

Measures the two rates the fast-path work targets (see
``docs/performance.md``):

- **configurations costed per second** -- the resource-planning
  microbenchmark: brute-force planning one operator over the full
  discrete grid, scalar loop vs batched ``predict_time_grid``;
- **sub-plans costed per second** -- whole-query planning throughput on
  TPC-H for five planner configurations: scalar brute force, vectorized
  brute force, lattice-batched costing (one stacked kernel per DP
  level), vectorized + within-run memo + resource plan cache, and
  batched + memo + cache (the production default);
- **workload queries per second** -- serial vs thread-pool vs
  process-sharded ``WorkloadRunner`` throughput over the evaluation
  queries;
- **Pareto frontiers per second** -- full latency/dollar frontier
  computation (``objective=PlanObjective.pareto()``: skyline kernel +
  exact scalar tail + Minkowski fold) through whole-query planning.

Writes ``BENCH_planning.json`` at the repository root. This is a
standalone script (not a pytest-benchmark case) so CI can smoke it
directly::

    PYTHONPATH=src python benchmarks/bench_planning_throughput.py --quick
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.catalog import tpch  # noqa: E402
from repro.core.pareto import PlanObjective  # noqa: E402
from repro.core.raqo import (  # noqa: E402
    DEFAULT_CLUSTER,
    RaqoPlanner,
    ResourcePlanningMethod,
    default_cost_model,
)
from repro.core.resource_planner import (  # noqa: E402
    brute_force_resource_plan,
)
from repro.engine.joins import JoinAlgorithm  # noqa: E402
from repro.workloads.runner import WorkloadRunner  # noqa: E402

if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_serving import schema_skeleton, validate_report  # noqa: E402

#: Field-structure snapshot of the JSON report (numbers are machine
#: dependent; the schema is not). See tests/experiments/
#: test_bench_planning_golden.py for the regeneration recipe.
GOLDEN_SCHEMA_PATH = (
    REPO_ROOT / "tests" / "experiments" / "golden"
    / "bench_planning_schema.json"
)


def validate_planning_report(report):
    """Mismatches between a planning report and the golden schema."""
    return validate_report(report, GOLDEN_SCHEMA_PATH)

#: One mid-size TPC-H SF-100 operator (orders x lineitem, in GB).
SMALL_GB, LARGE_GB = 17.0, 77.0


def _time_repeats(func, repeats):
    """Best-of-N wall time in seconds (minimum is the least noisy)."""
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        samples.append(time.perf_counter() - start)
    return min(samples), statistics.median(samples)


def _time_interleaved(funcs, repeats):
    """Best-of-N wall times for several variants, sampled round-robin.

    Shared machines drift by 2x over minutes; timing variant A's N
    repeats back-to-back and then variant B's would let a speed phase
    land on one variant only, skewing every recorded ratio. Interleaving
    the repeats samples all variants across the same phases, so
    best-of-N ratios between variants stay stable even when absolute
    rates move. Returns ``{name: (best_s, median_s)}``.
    """
    samples = {name: [] for name in funcs}
    for _ in range(repeats):
        for name, func in funcs.items():
            start = time.perf_counter()
            func()
            samples[name].append(time.perf_counter() - start)
    return {
        name: (min(times), statistics.median(times))
        for name, times in samples.items()
    }


def bench_config_costing(repeats):
    """Configurations-costed-per-second: scalar vs vectorized grid scan."""
    model = default_cost_model()
    cluster = DEFAULT_CLUSTER
    grid_size = cluster.grid_size

    def cost_fn(config):
        return model.predict_time(
            JoinAlgorithm.SORT_MERGE, SMALL_GB, LARGE_GB, config
        )

    def grid_cost_fn(grid):
        return model.predict_time_grid(
            JoinAlgorithm.SORT_MERGE, SMALL_GB, LARGE_GB, grid
        )

    def scalar():
        return brute_force_resource_plan(cost_fn, cluster)

    def vectorized():
        return brute_force_resource_plan(
            cost_fn, cluster, vectorized=True, grid_cost_fn=grid_cost_fn
        )

    assert scalar() == vectorized(), "fast path diverged from scalar"
    timings = _time_interleaved(
        {"scalar": scalar, "vectorized": vectorized}, repeats
    )
    scalar_s, _ = timings["scalar"]
    vector_s, _ = timings["vectorized"]
    return {
        "grid_size": grid_size,
        "scalar_configs_per_s": grid_size / scalar_s,
        "vectorized_configs_per_s": grid_size / vector_s,
        "speedup": scalar_s / vector_s,
    }


PLANNER_VARIANTS = {
    "scalar": dict(
        vectorized_resource_planning=False,
        memoize_within_run=False,
        cache_mode=None,
        batched_costing=False,
    ),
    "vectorized": dict(
        vectorized_resource_planning=True,
        memoize_within_run=False,
        cache_mode=None,
        batched_costing=False,
    ),
    "batched": dict(
        vectorized_resource_planning=True,
        memoize_within_run=False,
        cache_mode=None,
        batched_costing=True,
    ),
    "memoized": dict(
        vectorized_resource_planning=True,
        memoize_within_run=True,
        batched_costing=False,
    ),
    "batched_memoized": dict(
        vectorized_resource_planning=True,
        memoize_within_run=True,
        batched_costing=True,
    ),
}

#: Variants the --assert-overhead CI gate replays (the fast paths a
#: regression would actually hurt); gated when present in the baseline.
GATED_VARIANTS = ("memoized", "batched", "batched_memoized")


def bench_subplan_throughput(queries, repeats):
    """Sub-plans-costed-per-second through whole-query planning."""
    catalog = tpch.tpch_catalog(100)
    plan_fns = {}
    variant_outcomes = {}
    for name, options in PLANNER_VARIANTS.items():
        planner = RaqoPlanner(
            catalog,
            resource_method=ResourcePlanningMethod.BRUTE_FORCE,
            **options,
        )

        def plan_all(planner=planner):
            return [planner.optimize(query) for query in queries]

        variant_outcomes[name] = plan_all()  # warm before timing
        plan_fns[name] = plan_all
    timings = _time_interleaved(plan_fns, repeats)
    results = {}
    for name in PLANNER_VARIANTS:
        outcomes = variant_outcomes[name]
        best_s, median_s = timings[name]
        join_costings = sum(
            o.counters.join_costings for o in outcomes
        )
        resource_iterations = sum(
            o.counters.resource_iterations for o in outcomes
        )
        batched_calls = sum(
            o.counters.batched_calls for o in outcomes
        )
        results[name] = {
            "planning_s": best_s,
            "planning_s_median": median_s,
            "sub_plans_costed": join_costings,
            "sub_plans_per_s": join_costings / best_s,
            "resource_iterations": resource_iterations,
            "configs_per_s": resource_iterations / best_s,
            "memo_hits": sum(o.counters.memo_hits for o in outcomes),
            "batched_calls": batched_calls,
            "batch_memo_hits": sum(
                o.counters.batch_memo_hits for o in outcomes
            ),
            # One batched call costs one DP lattice level (or one
            # randomized plan's joins); zero on the scalar variants.
            "dp_levels_per_s": batched_calls / best_s,
        }
    scalar_s = results["scalar"]["planning_s"]
    vectorized_s = results["vectorized"]["planning_s"]
    for name, row in results.items():
        if name != "scalar":
            row["speedup_vs_scalar"] = scalar_s / row["planning_s"]
    for name in ("batched", "batched_memoized"):
        results[name]["speedup_vs_vectorized"] = (
            vectorized_s / results[name]["planning_s"]
        )
    return results


def bench_pareto_frontiers(queries, repeats):
    """Frontiers-computed-per-second through pareto-objective planning.

    Times the whole pipeline a ``pareto()`` plan pays on top of the
    scalarised search: batched per-stage grid costing, the vectorized
    weak-skyline pass, the exact scalar tail, and the Minkowski fold
    across stages. Fastest-objective planning over the same queries is
    timed alongside as the no-frontier reference, so the recorded
    overhead ratio is phase-stable on shared machines.
    """
    catalog = tpch.tpch_catalog(100)
    pareto_planner = RaqoPlanner(
        catalog,
        resource_method=ResourcePlanningMethod.BRUTE_FORCE,
        objective=PlanObjective.pareto(),
    )
    fastest_planner = RaqoPlanner(
        catalog,
        resource_method=ResourcePlanningMethod.BRUTE_FORCE,
    )

    def plan_pareto():
        return [pareto_planner.optimize(query) for query in queries]

    def plan_fastest():
        return [fastest_planner.optimize(query) for query in queries]

    outcomes = plan_pareto()  # warm model caches before timing
    plan_fastest()
    timings = _time_interleaved(
        {"pareto": plan_pareto, "fastest": plan_fastest}, repeats
    )
    pareto_s, pareto_median_s = timings["pareto"]
    fastest_s, _ = timings["fastest"]
    frontier_points = sum(len(o.frontier) for o in outcomes)
    return {
        "planning_s": pareto_s,
        "planning_s_median": pareto_median_s,
        "frontiers": len(queries),
        "pareto_frontiers_per_s": len(queries) / pareto_s,
        "frontier_points": frontier_points,
        "frontier_points_per_s": frontier_points / pareto_s,
        "dominated_pruned": sum(
            o.frontier.dominated_pruned for o in outcomes
        ),
        "overhead_vs_fastest": pareto_s / fastest_s,
    }


def bench_workload_sharding(queries, repeats, processes=2):
    """Workload queries-per-second: serial vs threads vs processes.

    Thread workers share one process (cheap startup, GIL-bound on the
    pure-Python planner layers); process shards each rebuild the planner
    (startup cost amortised over larger workloads). All three modes are
    bit-identical, so this measures pure orchestration throughput.
    """
    catalog = tpch.tpch_catalog(100)
    runner = WorkloadRunner(RaqoPlanner.default(catalog))
    workload = list(queries)
    runner.run(workload)  # warm model caches before timing

    modes = {
        "serial": dict(),
        "threads": dict(max_workers=processes),
        "processes": dict(processes=processes),
    }
    results = {"num_queries": len(workload), "shards": processes}
    timings = _time_interleaved(
        {
            name: lambda kwargs=kwargs: runner.run(workload, **kwargs)
            for name, kwargs in modes.items()
        },
        repeats,
    )
    for name in modes:
        best_s, median_s = timings[name]
        results[name] = {
            "wall_s": best_s,
            "wall_s_median": median_s,
            "queries_per_s": len(workload) / best_s,
        }
    for name in ("threads", "processes"):
        results[name]["speedup_vs_serial"] = (
            results["serial"]["wall_s"] / results[name]["wall_s"]
        )
    return results


def _gate_rates(variants, queries, catalog, repeats, extra_fns=None):
    """Fresh best-of-N ``sub_plans_per_s`` per variant, interleaved.

    ``extra_fns`` (name -> pre-warmed callable) join the same
    interleaved timing rounds so their best-of-N shares phases with the
    speed probe; their best wall times come back in the second return
    value (seconds, not a rate).
    """
    plan_fns = {}
    sub_plans = {}
    for variant in variants:
        planner = RaqoPlanner(
            catalog,
            resource_method=ResourcePlanningMethod.BRUTE_FORCE,
            **PLANNER_VARIANTS[variant],
        )

        def plan_all(planner=planner):
            return [planner.optimize(query) for query in queries]

        outcomes = plan_all()  # warm model caches before timing
        sub_plans[variant] = sum(
            o.counters.join_costings for o in outcomes
        )
        plan_fns[variant] = plan_all
    plan_fns.update(extra_fns or {})
    timings = _time_interleaved(plan_fns, repeats)
    rates = {
        variant: sub_plans[variant] / timings[variant][0]
        for variant in variants
    }
    extra_s = {name: timings[name][0] for name in (extra_fns or {})}
    return rates, extra_s


def assert_overhead(max_drop_pct, baseline_path, repeats):
    """Gate: fresh fast-path throughput vs the checked-in baseline.

    Replays the *baseline's own query set* through every gated planner
    variant recorded in the baseline (memoized, batched, and
    batched + memoized when present -- the production fast paths, null
    tracer) and fails when any fresh ``sub_plans_per_s`` rate falls more
    than ``max_drop_pct`` percent below the recorded one. This is the
    overhead budget for both the observability layer and the batched
    costing kernel: instrumentation and batching bookkeeping must stay
    within the noise floor of the planning hot path.

    Shared CI runners drift by 2x between runs, which would swamp any
    absolute-rate budget, so the comparison is *machine-normalized*:
    the plain ``vectorized`` variant (not gated, no memo/cache/batch
    bookkeeping) is measured fresh as a speed probe, and each gated
    variant's fresh rate is scaled by the recorded-vs-fresh probe ratio
    before comparing. A slow runner slows probe and variant together
    and cancels out; overhead added to a gated fast path moves only
    that variant and is caught.
    """
    baseline = json.loads(Path(baseline_path).read_text())
    by_name = {q.name: q for q in tpch.EVALUATION_QUERIES}
    queries = [by_name[name] for name in baseline["queries"]]
    catalog = tpch.tpch_catalog(100)

    gated = [
        variant
        for variant in GATED_VARIANTS
        if baseline["subplan_throughput"].get(variant) is not None
    ]
    probe_row = baseline["subplan_throughput"].get("vectorized")
    measured = [v for v in gated]
    if probe_row is not None:
        measured.append("vectorized")

    extra_fns = {}
    pareto_row = baseline.get("pareto_frontiers")
    if pareto_row is not None:
        pareto_planner = RaqoPlanner(
            catalog,
            resource_method=ResourcePlanningMethod.BRUTE_FORCE,
            objective=PlanObjective.pareto(),
        )

        def plan_pareto():
            return [pareto_planner.optimize(query) for query in queries]

        plan_pareto()  # warm model caches before timing
        extra_fns["pareto"] = plan_pareto

    rates, extra_s = _gate_rates(
        measured, queries, catalog, repeats, extra_fns
    )

    speed_scale = 1.0
    if probe_row is not None:
        probe_fresh = rates["vectorized"]
        speed_scale = probe_fresh / probe_row["sub_plans_per_s"]
        print(
            f"overhead gate: machine speed probe (vectorized) "
            f"{probe_fresh:,.0f} sub-plans/s vs recorded "
            f"{probe_row['sub_plans_per_s']:,.0f}/s "
            f"(scale {speed_scale:.2f}x)"
        )

    def check(label, recorded, fresh):
        normalized = fresh / speed_scale
        floor = recorded * (1.0 - max_drop_pct / 100.0)
        drop_pct = (1.0 - normalized / recorded) * 100.0
        print(
            f"overhead gate [{label}]: fresh {fresh:,.0f} "
            f"(normalized {normalized:,.0f}) vs baseline "
            f"{recorded:,.0f} ({drop_pct:+.1f}% drop, budget "
            f"{max_drop_pct:.1f}%)"
        )
        if normalized < floor:
            print(
                f"FAIL: {label} throughput fell below "
                f"{floor:,.0f} (machine-normalized)"
            )
            return 1
        return 0

    failures = 0
    for variant in gated:
        failures += check(
            f"{variant} sub-plans/s",
            baseline["subplan_throughput"][variant]["sub_plans_per_s"],
            rates[variant],
        )

    if pareto_row is not None:
        failures += check(
            "pareto frontiers/s",
            pareto_row["pareto_frontiers_per_s"],
            len(queries) / extra_s["pareto"],
        )

    if failures:
        return 1
    print("OK: within the overhead budget")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke mode: fewer repeats, Q3 only",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_planning.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--assert-overhead",
        type=float,
        metavar="PCT",
        default=None,
        help=(
            "instead of the full benchmark, replay the baseline's "
            "query set through the memoized planner and fail when "
            "throughput drops more than PCT percent below it"
        ),
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=REPO_ROOT / "BENCH_planning.json",
        help="baseline JSON for --assert-overhead",
    )
    parser.add_argument(
        "--check",
        type=Path,
        metavar="JSON",
        default=None,
        help=(
            "validate an existing report against the golden schema "
            "instead of benchmarking"
        ),
    )
    args = parser.parse_args(argv)
    if args.check is not None:
        problems = validate_planning_report(
            json.loads(args.check.read_text())
        )
        for problem in problems:
            print(problem)
        if problems:
            return 1
        print(f"OK: {args.check} matches the golden schema")
        return 0
    if args.assert_overhead is not None:
        # The gated variants are fast (tens of ms per pass), so extra
        # repeats are cheap and best-of-N needs them to sit near the
        # baseline's own best-of-10 even in --quick mode.
        repeats = 7 if args.quick else 10
        return assert_overhead(
            args.assert_overhead, args.baseline, repeats
        )
    repeats = 3 if args.quick else 10
    queries = (
        [tpch.QUERY_Q3]
        if args.quick
        else list(tpch.EVALUATION_QUERIES)
    )

    config_costing = bench_config_costing(repeats)
    subplan = bench_subplan_throughput(queries, repeats)
    pareto = bench_pareto_frontiers(queries, repeats)
    workload = bench_workload_sharding(
        queries, repeats=2 if args.quick else 3
    )
    report = {
        "mode": "quick" if args.quick else "full",
        "queries": [query.name for query in queries],
        "config_costing": config_costing,
        "subplan_throughput": subplan,
        "pareto_frontiers": pareto,
        "workload_sharding": workload,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    if GOLDEN_SCHEMA_PATH.exists():
        for problem in validate_planning_report(report):
            print(f"schema drift: {problem}")

    print(
        f"configurations costed per second "
        f"({config_costing['grid_size']}-point grid):"
    )
    print(
        f"  scalar     {config_costing['scalar_configs_per_s']:12,.0f}/s"
    )
    print(
        f"  vectorized "
        f"{config_costing['vectorized_configs_per_s']:12,.0f}/s "
        f"({config_costing['speedup']:.1f}x)"
    )
    print(f"sub-plan costing throughput ({len(queries)} queries):")
    for name, row in subplan.items():
        speedup = row.get("speedup_vs_scalar")
        suffix = f" ({speedup:.1f}x vs scalar)" if speedup else ""
        levels = row["dp_levels_per_s"]
        levels_txt = f", {levels:8,.0f} DP levels/s" if levels else ""
        print(
            f"  {name:<16} {row['sub_plans_per_s']:10,.0f} "
            f"sub-plans/s, {row['configs_per_s']:12,.0f} "
            f"configs/s{levels_txt}{suffix}"
        )
    print(
        f"Pareto frontiers ({pareto['frontiers']} queries, "
        f"{pareto['frontier_points']} frontier points):"
    )
    print(
        f"  {pareto['pareto_frontiers_per_s']:10,.1f} frontiers/s, "
        f"{pareto['frontier_points_per_s']:10,.0f} points/s "
        f"({pareto['overhead_vs_fastest']:.2f}x the fastest-objective "
        f"planning time)"
    )
    print(
        f"workload sharding ({workload['num_queries']} queries, "
        f"{workload['shards']} shards):"
    )
    for name in ("serial", "threads", "processes"):
        row = workload[name]
        speedup = row.get("speedup_vs_serial")
        suffix = f" ({speedup:.2f}x vs serial)" if speedup else ""
        print(
            f"  {name:<10} {row['queries_per_s']:8,.2f} "
            f"queries/s{suffix}"
        )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
