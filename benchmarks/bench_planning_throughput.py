"""Planning-throughput benchmark: scalar vs vectorized vs memoized.

Measures the two rates the fast-path work targets (see
``docs/performance.md``):

- **configurations costed per second** -- the resource-planning
  microbenchmark: brute-force planning one operator over the full
  discrete grid, scalar loop vs batched ``predict_time_grid``;
- **sub-plans costed per second** -- whole-query planning throughput on
  TPC-H for three planner configurations: scalar brute force, vectorized
  brute force, and vectorized + within-run memo + resource plan cache.

Writes ``BENCH_planning.json`` at the repository root. This is a
standalone script (not a pytest-benchmark case) so CI can smoke it
directly::

    PYTHONPATH=src python benchmarks/bench_planning_throughput.py --quick
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.catalog import tpch  # noqa: E402
from repro.core.raqo import (  # noqa: E402
    DEFAULT_CLUSTER,
    RaqoPlanner,
    ResourcePlanningMethod,
    default_cost_model,
)
from repro.core.resource_planner import (  # noqa: E402
    brute_force_resource_plan,
)
from repro.engine.joins import JoinAlgorithm  # noqa: E402

#: One mid-size TPC-H SF-100 operator (orders x lineitem, in GB).
SMALL_GB, LARGE_GB = 17.0, 77.0


def _time_repeats(func, repeats):
    """Best-of-N wall time in seconds (minimum is the least noisy)."""
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        samples.append(time.perf_counter() - start)
    return min(samples), statistics.median(samples)


def bench_config_costing(repeats):
    """Configurations-costed-per-second: scalar vs vectorized grid scan."""
    model = default_cost_model()
    cluster = DEFAULT_CLUSTER
    grid_size = cluster.grid_size

    def cost_fn(config):
        return model.predict_time(
            JoinAlgorithm.SORT_MERGE, SMALL_GB, LARGE_GB, config
        )

    def grid_cost_fn(grid):
        return model.predict_time_grid(
            JoinAlgorithm.SORT_MERGE, SMALL_GB, LARGE_GB, grid
        )

    def scalar():
        return brute_force_resource_plan(cost_fn, cluster)

    def vectorized():
        return brute_force_resource_plan(
            cost_fn, cluster, vectorized=True, grid_cost_fn=grid_cost_fn
        )

    assert scalar() == vectorized(), "fast path diverged from scalar"
    scalar_s, _ = _time_repeats(scalar, repeats)
    vector_s, _ = _time_repeats(vectorized, repeats)
    return {
        "grid_size": grid_size,
        "scalar_configs_per_s": grid_size / scalar_s,
        "vectorized_configs_per_s": grid_size / vector_s,
        "speedup": scalar_s / vector_s,
    }


PLANNER_VARIANTS = {
    "scalar": dict(
        vectorized_resource_planning=False,
        memoize_within_run=False,
        cache_mode=None,
    ),
    "vectorized": dict(
        vectorized_resource_planning=True,
        memoize_within_run=False,
        cache_mode=None,
    ),
    "memoized": dict(
        vectorized_resource_planning=True,
        memoize_within_run=True,
    ),
}


def bench_subplan_throughput(queries, repeats):
    """Sub-plans-costed-per-second through whole-query planning."""
    catalog = tpch.tpch_catalog(100)
    results = {}
    for name, options in PLANNER_VARIANTS.items():
        planner = RaqoPlanner(
            catalog,
            resource_method=ResourcePlanningMethod.BRUTE_FORCE,
            **options,
        )

        def plan_all(planner=planner):
            return [planner.optimize(query) for query in queries]

        outcomes = plan_all()  # warm model caches before timing
        best_s, median_s = _time_repeats(plan_all, repeats)
        join_costings = sum(
            o.counters.join_costings for o in outcomes
        )
        resource_iterations = sum(
            o.counters.resource_iterations for o in outcomes
        )
        results[name] = {
            "planning_s": best_s,
            "planning_s_median": median_s,
            "sub_plans_costed": join_costings,
            "sub_plans_per_s": join_costings / best_s,
            "resource_iterations": resource_iterations,
            "configs_per_s": resource_iterations / best_s,
            "memo_hits": sum(o.counters.memo_hits for o in outcomes),
        }
    for name in ("vectorized", "memoized"):
        results[name]["speedup_vs_scalar"] = (
            results["scalar"]["planning_s"] / results[name]["planning_s"]
        )
    return results


def assert_overhead(max_drop_pct, baseline_path, repeats):
    """Gate: fresh memoized throughput vs the checked-in baseline.

    Replays the *baseline's own query set* through the memoized planner
    variant (the production fast path, null tracer) and fails when the
    fresh ``sub_plans_per_s`` rate falls more than ``max_drop_pct``
    percent below the recorded one.  This is the observability layer's
    overhead budget: instrumentation behind the null tracer must stay
    within the noise floor of the planning hot path.
    """
    baseline = json.loads(Path(baseline_path).read_text())
    recorded = baseline["subplan_throughput"]["memoized"][
        "sub_plans_per_s"
    ]
    by_name = {q.name: q for q in tpch.EVALUATION_QUERIES}
    queries = [by_name[name] for name in baseline["queries"]]
    catalog = tpch.tpch_catalog(100)
    planner = RaqoPlanner(
        catalog,
        resource_method=ResourcePlanningMethod.BRUTE_FORCE,
        **PLANNER_VARIANTS["memoized"],
    )

    def plan_all():
        return [planner.optimize(query) for query in queries]

    outcomes = plan_all()  # warm model caches before timing
    best_s, _ = _time_repeats(plan_all, repeats)
    sub_plans = sum(o.counters.join_costings for o in outcomes)
    fresh = sub_plans / best_s
    floor = recorded * (1.0 - max_drop_pct / 100.0)
    drop_pct = (1.0 - fresh / recorded) * 100.0
    print(
        f"overhead gate: fresh {fresh:,.0f} sub-plans/s vs baseline "
        f"{recorded:,.0f}/s ({drop_pct:+.1f}% drop, budget "
        f"{max_drop_pct:.1f}%)"
    )
    if fresh < floor:
        print(
            f"FAIL: memoized planning throughput fell below "
            f"{floor:,.0f} sub-plans/s"
        )
        return 1
    print("OK: within the overhead budget")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke mode: fewer repeats, Q3 only",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_planning.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--assert-overhead",
        type=float,
        metavar="PCT",
        default=None,
        help=(
            "instead of the full benchmark, replay the baseline's "
            "query set through the memoized planner and fail when "
            "throughput drops more than PCT percent below it"
        ),
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=REPO_ROOT / "BENCH_planning.json",
        help="baseline JSON for --assert-overhead",
    )
    args = parser.parse_args(argv)
    if args.assert_overhead is not None:
        repeats = 3 if args.quick else 10
        return assert_overhead(
            args.assert_overhead, args.baseline, repeats
        )
    repeats = 3 if args.quick else 10
    queries = (
        [tpch.QUERY_Q3]
        if args.quick
        else list(tpch.EVALUATION_QUERIES)
    )

    config_costing = bench_config_costing(repeats)
    subplan = bench_subplan_throughput(queries, repeats)
    report = {
        "mode": "quick" if args.quick else "full",
        "queries": [query.name for query in queries],
        "config_costing": config_costing,
        "subplan_throughput": subplan,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"configurations costed per second "
        f"({config_costing['grid_size']}-point grid):"
    )
    print(
        f"  scalar     {config_costing['scalar_configs_per_s']:12,.0f}/s"
    )
    print(
        f"  vectorized "
        f"{config_costing['vectorized_configs_per_s']:12,.0f}/s "
        f"({config_costing['speedup']:.1f}x)"
    )
    print(f"sub-plan costing throughput ({len(queries)} queries):")
    for name, row in subplan.items():
        speedup = row.get("speedup_vs_scalar")
        suffix = f" ({speedup:.1f}x vs scalar)" if speedup else ""
        print(
            f"  {name:<10} {row['sub_plans_per_s']:10,.0f} sub-plans/s, "
            f"{row['configs_per_s']:12,.0f} configs/s{suffix}"
        )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
