"""Fig 10 benchmark: default join-selection decision trees.

Paper figure: the one-split "Data Size <= 10 MB" trees Hive and Spark
ship; the CART classifier recovers the threshold from labelled samples.
"""

from _bench_utils import run_once

from repro.experiments import fig10_default_trees


def test_fig10_default_trees(benchmark):
    result = run_once(benchmark, fig10_default_trees.run)
    print()
    for engine, text in result.rendered.items():
        print(f"Fig 10 ({engine}):")
        print(text)
        learned_mb = result.learned_thresholds_gb[engine] * 1024
        print(f"learned threshold: {learned_mb:.1f} MB (rule: 10 MB)\n")
        benchmark.extra_info[f"{engine}_threshold_mb"] = learned_mb
        assert abs(learned_mb - 10.0) < 4.0
