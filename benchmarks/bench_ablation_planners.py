"""Ablation: the three join-order search algorithms under RAQO.

Left-deep Selinger DP (the paper's System R prototype), exhaustive bushy
DP (the quality upper bound on small queries), and the FastRandomized
multi-objective planner -- same cost model, same resource planning,
compared on plan quality, wall time, and resource configurations
explored for the TPC-H evaluation queries.
"""

from _bench_utils import run_once

from repro.catalog import tpch
from repro.core.raqo import RaqoCoster, RaqoPlanner, default_cost_model
from repro.experiments.report import format_table
from repro.planner.bushy import BushyPlanner
from repro.planner.randomized import FastRandomizedPlanner
from repro.planner.selinger import SelingerPlanner


def _compare():
    catalog = tpch.tpch_catalog(100)
    facade = RaqoPlanner.default(catalog)
    rows = []
    for query in tpch.EVALUATION_QUERIES:
        for name, planner in (
            ("selinger", SelingerPlanner(RaqoCoster(model=default_cost_model()))),
            ("bushy_dp", BushyPlanner(RaqoCoster(model=default_cost_model()))),
            (
                "fast_randomized",
                FastRandomizedPlanner(
                    RaqoCoster(model=default_cost_model()),
                    iterations=10,
                ),
            ),
        ):
            context = facade.make_context()
            result = planner.plan(query, context)
            rows.append(
                (
                    query.name,
                    name,
                    result.cost.time_s,
                    result.wall_time_s * 1000.0,
                    result.counters.resource_iterations,
                )
            )
    return rows


def test_ablation_planners(benchmark):
    rows = run_once(benchmark, _compare)
    print()
    print(
        format_table(
            [
                "query",
                "planner",
                "plan cost (s)",
                "wall (ms)",
                "#resource iters",
            ],
            rows,
            title="Ablation: join-order search algorithms under RAQO",
        )
    )
    by_key = {(r[0], r[1]): r[2] for r in rows}
    for query in tpch.EVALUATION_QUERIES:
        bushy = by_key[(query.name, "bushy_dp")]
        selinger = by_key[(query.name, "selinger")]
        randomized = by_key[(query.name, "fast_randomized")]
        # Bushy subsumes left-deep; randomized should stay close.
        assert bushy <= selinger + 1e-6
        assert randomized <= selinger * 1.25
