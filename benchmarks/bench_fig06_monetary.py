"""Fig 6 benchmark: monetary cost of BHJ vs SMJ over varying resources.

Paper series: serverless dollar costs of both implementations over the
Fig 3 sweeps; either implementation can be the cost-effective one.
"""

import math

from _bench_utils import run_once

from repro.experiments import fig06_monetary
from repro.experiments.report import format_table


def test_fig06_monetary(benchmark):
    result = run_once(benchmark, fig06_monetary.run)
    print()
    print(
        format_table(
            ["container GB", "SMJ ($)", "BHJ ($)", "cheaper"],
            [
                (
                    p.config.container_gb,
                    p.smj_dollars,
                    p.bhj_dollars,
                    str(p.cheaper),
                )
                for p in result.container_size_sweep
            ],
            title="Fig 6(a): monetary cost over container size",
        )
    )
    print(
        format_table(
            ["#containers", "SMJ ($)", "BHJ ($)", "cheaper"],
            [
                (
                    p.config.num_containers,
                    p.smj_dollars,
                    p.bhj_dollars,
                    str(p.cheaper),
                )
                for p in result.container_count_sweep
            ],
            title="Fig 6(b): monetary cost over #containers",
        )
    )
    winners = {
        str(p.cheaper)
        for p in result.container_size_sweep
        + result.container_count_sweep
        if math.isfinite(p.bhj_dollars)
    }
    print(f"cost-effective implementations seen: {sorted(winners)}")
    benchmark.extra_info["winners"] = sorted(winners)
    assert len(winners) == 2
