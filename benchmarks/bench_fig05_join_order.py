"""Fig 5 benchmark: join order decisions over varying resources.

Paper series: two physical plans for a two-join query over container
sizes (plan 1 wins, with an OOM wall) and container counts (plan 2
overtakes at ~32 containers).
"""

from _bench_utils import run_once

from repro.experiments import fig05_join_order
from repro.experiments.report import format_table


def test_fig05_join_order(benchmark):
    result = run_once(benchmark, fig05_join_order.run)
    print()
    print(
        format_table(
            ["container GB", "Plan 1 (s)", "Plan 2 (s)", "winner"],
            [
                (
                    p.config.container_gb,
                    p.plan1_time_s,
                    p.plan2_time_s,
                    p.winner,
                )
                for p in result.container_size_sweep
            ],
            title="Fig 5(a): join orders over container size (nc=10)",
        )
    )
    print(
        format_table(
            ["#containers", "Plan 1 (s)", "Plan 2 (s)", "winner"],
            [
                (
                    p.config.num_containers,
                    p.plan1_time_s,
                    p.plan2_time_s,
                    p.winner,
                )
                for p in result.container_count_sweep
            ],
            title="Fig 5(b): join orders over #containers (cs=3 GB)",
        )
    )
    crossover = result.crossover_containers()
    print(f"plan 2 overtakes at {crossover} containers (paper: 32)")
    benchmark.extra_info["crossover_containers"] = crossover
    assert crossover is not None and 24 <= crossover <= 44
