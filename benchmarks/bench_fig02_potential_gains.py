"""Fig 2 benchmark: potential gains of joint query+resource optimization.

Paper series: execution time and resources used (TB*s) per resource
configuration for the default optimizer's plan vs the best plan; the
default is up to 2x slower and up to 2x more resource-demanding.
"""

from _bench_utils import run_once

from repro.engine.profiles import HIVE_PROFILE, SPARK_PROFILE
from repro.experiments import fig02_potential_gains
from repro.experiments.report import format_table


def _report(benchmark, result):
    print()
    print(
        format_table(
            ["config", "default (s)", "best (s)", "default TB*s", "best TB*s"],
            [
                (
                    str(p.config),
                    p.default_time_s,
                    p.best_time_s,
                    p.default_tb_s,
                    p.best_tb_s,
                )
                for p in result.points
            ],
            title=f"Fig 2 ({result.engine})",
        )
    )
    print(
        f"{result.engine}: default up to {result.max_time_ratio:.2f}x "
        f"slower / {result.max_resource_ratio:.2f}x more resources "
        "(paper: up to 2x)"
    )
    benchmark.extra_info[f"{result.engine}_max_time_ratio"] = (
        result.max_time_ratio
    )


def test_fig02_hive(benchmark):
    result = run_once(benchmark, fig02_potential_gains.run, HIVE_PROFILE)
    _report(benchmark, result)
    assert result.max_time_ratio >= 1.3


def test_fig02_spark(benchmark):
    result = run_once(
        benchmark, fig02_potential_gains.run, SPARK_PROFILE
    )
    _report(benchmark, result)
    assert result.max_time_ratio >= 1.2
