"""Fig 9 benchmark: the BHJ/SMJ switch-point space in Hive and Spark.

Paper series: switch-point curves over container size, one per
<#containers, #reducers> combination; the 10 MB default rule is far below
every curve.
"""

from _bench_utils import run_once

from repro.engine.profiles import HIVE_PROFILE, SPARK_PROFILE
from repro.experiments import fig09_switch_space
from repro.experiments.report import format_table


def _report(benchmark, result):
    unit = "GB" if result.engine == "hive" else "MB"
    scale = 1.0 if result.engine == "hive" else 1024.0
    rows = []
    for (nc, nr), points in result.curves.items():
        label = f"<{nc},{nr if nr is not None else 'default'}>"
        rows.append(
            tuple(
                [label]
                + [round(p.switch_gb * scale, 2) for p in points]
            )
        )
    print()
    print(
        format_table(
            ["<#containers,#reducers>"]
            + [
                f"cs={int(cs)}GB"
                for cs in fig09_switch_space.CONTAINER_SIZES_GB
            ],
            rows,
            title=f"Fig 9 ({result.engine}): switch points ({unit})",
        )
    )
    error = result.default_rule_error() * scale
    print(
        f"{result.engine}: default 10 MB rule at least "
        f"{error:.1f} {unit} below every switch point"
    )
    benchmark.extra_info[f"{result.engine}_default_rule_gap"] = error


def test_fig09_hive(benchmark):
    result = run_once(benchmark, fig09_switch_space.run, HIVE_PROFILE)
    _report(benchmark, result)
    assert result.default_rule_error() > 1.0


def test_fig09_spark(benchmark):
    result = run_once(benchmark, fig09_switch_space.run, SPARK_PROFILE)
    _report(benchmark, result)
    for curve in result.curves.values():
        for point in curve:
            assert 0.05 <= point.switch_gb <= 1.5
