"""Fig 13 benchmark: hill climbing vs brute force resource planning.

Paper series: per TPC-H query, #resource configurations explored and
planner runtime for both methods; hill climbing explores ~4x fewer
configurations with matching runtime gains.
"""

from _bench_utils import run_once

from repro.experiments import fig13_hill_climbing
from repro.experiments.report import format_table


def test_fig13_hill_climbing(benchmark):
    result = run_once(benchmark, fig13_hill_climbing.run)
    print()
    print(
        format_table(
            [
                "query",
                "brute force iters",
                "hill climb iters",
                "reduction",
                "brute force (ms)",
                "hill climb (ms)",
            ],
            [
                (
                    r.query,
                    r.brute_force_iterations,
                    r.hill_climb_iterations,
                    f"{r.iteration_reduction:.1f}x",
                    r.brute_force_ms,
                    r.hill_climb_ms,
                )
                for r in result.rows
            ],
            title="Fig 13: hill climbing vs brute force",
        )
    )
    print(
        f"mean reduction {result.mean_iteration_reduction:.1f}x "
        "(paper: ~4x)"
    )
    benchmark.extra_info["mean_reduction"] = (
        result.mean_iteration_reduction
    )
    assert result.mean_iteration_reduction > 2.0
    for row in result.rows:
        assert row.runtime_reduction > 1.0
