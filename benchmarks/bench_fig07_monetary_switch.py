"""Fig 7 benchmark: monetary switch points over varying data size.

Paper series: the data sizes at which the cost-effective implementation
flips, per resource configuration -- they vary with both resources and
data.
"""

from _bench_utils import run_once

from repro.engine.joins import JoinAlgorithm
from repro.experiments import fig07_monetary_switch
from repro.experiments.report import format_table


def test_fig07_monetary_switch(benchmark):
    result = run_once(benchmark, fig07_monetary_switch.run)
    print()
    rows = []
    switches = set()
    for label, series in result.series.items():
        bhj_cheaper = sum(
            1
            for c in series.comparisons
            if c.cheaper is JoinAlgorithm.BROADCAST_HASH
        )
        rows.append(
            (
                label,
                series.switch.switch_gb,
                series.switch.wall_gb,
                bhj_cheaper,
            )
        )
        switches.add(series.switch.switch_gb)
        benchmark.extra_info[f"switch_{label}"] = (
            series.switch.switch_gb
        )
    print(
        format_table(
            [
                "configuration",
                "monetary switch (GB)",
                "wall (GB)",
                "#BHJ-cheaper points",
            ],
            rows,
            title="Fig 7: monetary switch points over data size",
        )
    )
    # The switch points move with the resources (paper's conclusion).
    assert len(switches) > 1
