"""Ablation: resource-planning design choices.

Two of the design decisions DESIGN.md calls out:

1. the hill-climb *start point* (Algorithm 1 starts from the minimum
   configuration "given that the users want to minimize the resources
   used") -- compared against starting from the middle and the maximum
   of the envelope;
2. the cache *lookup mode* (exact vs nearest-neighbour vs weighted
   average at the same threshold) on TPC-H All planning.
"""

from _bench_utils import run_once

from repro.catalog import tpch
from repro.catalog.statistics import StatisticsEstimator
from repro.cluster.cluster import ClusterConditions
from repro.cluster.containers import ResourceConfiguration
from repro.core.plan_cache import LookupMode
from repro.core.raqo import RaqoPlanner, default_cost_model
from repro.core.resource_planner import hill_climb_resource_plan
from repro.engine.joins import JoinAlgorithm
from repro.experiments.report import format_table

CLUSTER = ClusterConditions(max_containers=100, max_container_gb=10.0)


def _climb_from_everywhere():
    model = default_cost_model()

    def objective(config):
        return model.predict_time(
            JoinAlgorithm.SORT_MERGE, 3.0, 77.0, config
        )

    starts = {
        "minimum": CLUSTER.minimum_configuration,
        "middle": ResourceConfiguration(num_containers=50, container_gb=5.0),
        "maximum": CLUSTER.maximum_configuration,
    }
    rows = []
    for label, start in starts.items():
        outcome = hill_climb_resource_plan(
            objective, CLUSTER, start=start
        )
        rows.append(
            (label, str(outcome.config), outcome.cost, outcome.iterations)
        )
    return rows


def test_ablation_hill_climb_start(benchmark):
    rows = run_once(benchmark, _climb_from_everywhere)
    print()
    print(
        format_table(
            ["start", "final config", "predicted cost (s)", "iterations"],
            rows,
            title="Ablation: hill-climb start point (SMJ, ss=3 GB)",
        )
    )
    costs = [row[2] for row in rows]
    # All starts converge to comparable costs on this objective.
    assert max(costs) <= min(costs) * 1.5


def _plan_with_cache_modes():
    catalog = tpch.tpch_catalog(100)
    rows = []
    for mode in (
        None,
        LookupMode.EXACT,
        LookupMode.NEAREST,
        LookupMode.WEIGHTED_AVERAGE,
    ):
        planner = RaqoPlanner(
            catalog,
            cache_mode=mode,
            cache_threshold_gb=0.01,
        )
        result = planner.optimize(tpch.QUERY_ALL)
        rows.append(
            (
                "no cache" if mode is None else str(mode),
                result.resource_iterations,
                result.wall_time_s * 1000.0,
                result.counters.cache_hits,
                result.cost.time_s,
            )
        )
    return rows


def test_ablation_cache_mode(benchmark):
    rows = run_once(benchmark, _plan_with_cache_modes)
    print()
    print(
        format_table(
            [
                "lookup mode",
                "#resource iters",
                "runtime (ms)",
                "hits",
                "plan cost (s)",
            ],
            rows,
            title="Ablation: cache lookup mode (TPC-H All, 0.01 GB)",
        )
    )
    iterations = {row[0]: row[1] for row in rows}
    # Any cache beats no cache; interpolating modes beat exact.
    assert iterations["no cache"] > iterations["exact"]
    assert (
        iterations["nearest_neighbor"] <= iterations["exact"]
    )
