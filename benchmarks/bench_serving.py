"""Serving benchmark: replay Poisson and bursty traces, report latency.

Drives the multi-tenant :class:`~repro.serving.service.OptimizerService`
with the two arrival processes the paper's queueing story turns on --
steady Poisson load and duty-cycled bursts -- and records, per trace:

- **QPS** (completed requests per wall-clock second of replay), and
- **p50/p95/p99 end-to-end planning latency** plus queue-wait quantiles,
- cache traffic (hits/misses/inserts/evictions/entries/hit rate) and
  admission-control outcomes (rejections).

Writes ``BENCH_serving.json`` at the repository root, plus a Prometheus
stats file (``BENCH_serving_stats.prom``) snapshotting the telemetry
plane of the final trace's session so CI can archive the raw series
alongside the headline numbers.  Standalone (not a pytest-benchmark
case) so CI can smoke it directly::

    PYTHONPATH=src python benchmarks/bench_serving.py --quick
    PYTHONPATH=src python benchmarks/bench_serving.py --check BENCH_serving.json

``--check`` validates a report file against the golden schema snapshot
under ``tests/experiments/golden/bench_serving_schema.json`` (field
shape only, never timings), so format drift fails CI the way the
fig03/04/09 goldens do.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import RaqoSession  # noqa: E402
from repro.serving import (  # noqa: E402
    ReplayConfig,
    build_requests,
    replay,
)

GOLDEN_SCHEMA_PATH = (
    REPO_ROOT / "tests" / "experiments" / "golden"
    / "bench_serving_schema.json"
)

#: Replay shapes: (label, arrival kind, full-size, quick-size).
TRACES = (
    ("poisson", "poisson", 400, 60),
    ("bursty", "bursty", 400, 60),
)


def schema_skeleton(value: object) -> object:
    """The type-shape of a JSON value: field names kept, values typed.

    Dicts map each key to its skeleton, lists collapse to their first
    element's skeleton (all report lists are homogeneous), scalars
    become type names.  Two reports with the same field structure have
    identical skeletons regardless of the numbers inside.
    """
    if isinstance(value, dict):
        return {key: schema_skeleton(value[key]) for key in sorted(value)}
    if isinstance(value, list):
        return [schema_skeleton(value[0])] if value else []
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, (int, float)):
        return "number"
    if value is None:
        return "null"
    return "string"


def validate_report(
    report: Dict[str, object], schema_path: Path = GOLDEN_SCHEMA_PATH
) -> List[str]:
    """Mismatch descriptions between a report and the golden schema."""
    golden = json.loads(schema_path.read_text())
    actual = schema_skeleton(report)

    problems: List[str] = []

    def walk(expected: object, got: object, path: str) -> None:
        if isinstance(expected, dict):
            if not isinstance(got, dict):
                problems.append(f"{path}: expected object, got {got!r}")
                return
            for key in expected:
                if key not in got:
                    problems.append(f"{path}.{key}: missing")
                else:
                    walk(expected[key], got[key], f"{path}.{key}")
            for key in got:
                if key not in expected:
                    problems.append(f"{path}.{key}: unexpected field")
        elif isinstance(expected, list):
            if not isinstance(got, list):
                problems.append(f"{path}: expected array, got {got!r}")
            elif expected and got:
                walk(expected[0], got[0], f"{path}[0]")
        elif expected != got:
            problems.append(
                f"{path}: expected {expected!r}, got {got!r}"
            )

    walk(golden, actual, "$")
    return problems


def run_benchmark(
    quick: bool = False,
    workers: int = 4,
    seed: int = 0,
    stats_path: Optional[Path] = None,
) -> Dict[str, object]:
    """Replay every trace shape; returns the BENCH_serving payload.

    When ``stats_path`` is given, the telemetry plane of the *final*
    trace's session is exported there as Prometheus text exposition
    (per-tenant serving series, windowed rates, cache counters) so CI
    can upload the raw series as a build artifact.
    """
    traces: Dict[str, object] = {}
    session: Optional[RaqoSession] = None
    for label, arrival, full, small in TRACES:
        session = RaqoSession(scale_factor=100, seed=seed)
        service = session.serve(
            workers=workers,
            max_queue=4096,
            max_batch=16,
        )
        config = ReplayConfig(
            num_requests=small if quick else full,
            arrival=arrival,
            num_tenants=4,
            seed=seed,
        )
        requests = build_requests(config, catalog=session.catalog)
        with service:
            report = replay(service, requests, label=label)
        payload = report.to_json_dict()
        payload["arrival"] = arrival
        payload["workers"] = workers
        traces[label] = payload
        print(
            f"{label:>8}: {report.completed}/{report.requests} ok "
            f"({report.rejected} rejected) | {report.qps:8.0f} qps | "
            f"latency p50 {report.latency_ms['p50']:7.2f} ms, "
            f"p95 {report.latency_ms['p95']:7.2f} ms, "
            f"p99 {report.latency_ms['p99']:7.2f} ms | "
            f"cache hit rate "
            f"{float(report.cache.get('hit_rate', 0.0)):.2f}"
        )
    if stats_path is not None and session is not None:
        session.write_stats_file(stats_path)
        print(f"stats file written: {stats_path}")
    return {
        "benchmark": "serving_replay",
        "schema_version": 1,
        "quick": quick,
        "seed": seed,
        "config": {
            "workers": workers,
            "num_tenants": 4,
            "scale_factor": 100,
        },
        "traces": traces,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small traces for CI smoke runs",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="service worker threads (default 4)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="trace seed (default 0)"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_serving.json",
        help="report destination (default: repo-root BENCH_serving.json)",
    )
    parser.add_argument(
        "--stats-file",
        type=Path,
        default=REPO_ROOT / "BENCH_serving_stats.prom",
        help="Prometheus stats-file destination (default: repo-root "
        "BENCH_serving_stats.prom)",
    )
    parser.add_argument(
        "--check",
        type=Path,
        metavar="FILE",
        default=None,
        help="validate FILE against the golden schema and exit "
        "(no benchmark run)",
    )
    args = parser.parse_args(argv)

    if args.check is not None:
        problems = validate_report(json.loads(args.check.read_text()))
        if problems:
            for problem in problems:
                print(f"schema mismatch: {problem}", file=sys.stderr)
            return 1
        print(f"{args.check}: schema ok")
        return 0

    report = run_benchmark(
        quick=args.quick,
        workers=args.workers,
        seed=args.seed,
        stats_path=args.stats_file,
    )
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nreport written: {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
