"""Fig 4 benchmark: BHJ/SMJ switch points over varying data size.

Paper series: execution times over the smaller relation's size for two
container sizes (switch at 3.4 GB = OOM wall for 3 GB containers, ~6.4 GB
for 9 GB containers) and two container counts.
"""

from _bench_utils import run_once

from repro.experiments import fig04_data_switch
from repro.experiments.report import format_table


def test_fig04_data_switch(benchmark):
    result = run_once(benchmark, fig04_data_switch.run)
    print()
    for label, series in result.series.items():
        print(
            format_table(
                ["smaller table (GB)", "SMJ (s)", "BHJ (s)"],
                [
                    (
                        series.data_gb[i],
                        series.smj_time_s[i],
                        series.bhj_time_s[i],
                    )
                    for i in range(0, len(series.data_gb), 2)
                ],
                title=f"Fig 4 series {label}",
            )
        )
        print(
            f"{label}: switch {series.switch.switch_gb:.2f} GB, "
            f"wall {series.switch.wall_gb:.2f} GB"
        )
        benchmark.extra_info[f"switch_{label}"] = (
            series.switch.switch_gb
        )
    assert abs(result.switch_gb("cs=3GB,nc=10") - 3.45) < 0.2
    assert 5.0 <= result.switch_gb("cs=9GB,nc=10") <= 7.0
