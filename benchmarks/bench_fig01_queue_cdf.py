"""Fig 1 benchmark: queue-time/runtime CDF on the shared cluster.

Paper series: the cumulative distribution of queue-time over execution
time; >80% of jobs at ratio >= 1, >20% at ratio >= 4.
"""

from _bench_utils import run_once

from repro.experiments import fig01_queue_cdf
from repro.experiments.report import format_table


def test_fig01_queue_cdf(benchmark):
    result = run_once(benchmark, fig01_queue_cdf.run)
    print()
    print(
        format_table(
            ["fraction of jobs", "queue/runtime ratio"],
            [(f"{frac:.2f}", ratio) for frac, ratio in result.cdf],
            title="Fig 1: queue/runtime ratio CDF",
        )
    )
    print(
        f"P(ratio>=1)={result.fraction_ratio_ge_1:.2f} (paper >0.80) | "
        f"P(ratio>=4)={result.fraction_ratio_ge_4:.2f} (paper >0.20)"
    )
    benchmark.extra_info["fraction_ratio_ge_1"] = (
        result.fraction_ratio_ge_1
    )
    benchmark.extra_info["fraction_ratio_ge_4"] = (
        result.fraction_ratio_ge_4
    )
    assert result.fraction_ratio_ge_1 >= 0.80
    assert result.fraction_ratio_ge_4 >= 0.20
