"""Workload-level benchmark: RAQO vs the two-step baseline end to end.

Beyond the paper's per-query figures: a mixed TPC-H workload planned by
each optimizer configuration and executed on the simulated engine,
reporting total planning cost, total execution time, and total dollars --
the deployment-level version of the paper's headline claim.
"""

import numpy as np
from _bench_utils import run_once

from repro.catalog import tpch
from repro.core.raqo import RaqoPlanner
from repro.experiments.report import format_table
from repro.workloads import (
    WorkloadSpec,
    compare_planners,
    generate_workload,
)


def _run_workload():
    catalog = tpch.tpch_catalog(100)
    rng = np.random.default_rng(17)
    queries = generate_workload(
        catalog,
        WorkloadSpec(num_queries=12, repeat_probability=0.4),
        rng,
    )
    return compare_planners(
        {
            "two-step QO": RaqoPlanner.two_step_baseline(catalog),
            "RAQO": RaqoPlanner.default(catalog),
            "RAQO across-query cache": RaqoPlanner(
                catalog, clear_cache_between_queries=False
            ),
        },
        queries,
    )


def test_workload_gains(benchmark):
    reports = run_once(benchmark, _run_workload)
    print()
    print(
        format_table(
            [
                "planner",
                "queries",
                "planning (ms)",
                "#resource iters",
                "executed (s)",
                "dollars",
            ],
            [report.summary_row() for report in reports],
            title="Workload-level: 12 mixed TPC-H queries",
        )
    )
    by_label = {report.label: report for report in reports}
    raqo = by_label["RAQO"]
    baseline = by_label["two-step QO"]
    warm = by_label["RAQO across-query cache"]
    speedup = (
        baseline.total_executed_time_s / raqo.total_executed_time_s
    )
    print(f"RAQO end-to-end speedup over the baseline: {speedup:.2f}x")
    benchmark.extra_info["workload_speedup"] = speedup
    assert raqo.total_executed_time_s <= (
        baseline.total_executed_time_s * 1.01
    )
    assert warm.total_resource_iterations <= (
        raqo.total_resource_iterations
    )
