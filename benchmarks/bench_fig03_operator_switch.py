"""Fig 3 benchmark: BHJ vs SMJ over varying resources in Hive.

Paper series: execution times over container size (switch at 7 GB, OOM
below 5 GB) and over container count (switch at 20; SMJ ~2x faster at 40).
"""

from _bench_utils import run_once

from repro.experiments import fig03_operator_switch
from repro.experiments.report import format_table


def test_fig03_operator_switch(benchmark):
    result = run_once(benchmark, fig03_operator_switch.run)
    print()
    print(
        format_table(
            ["container GB", "SMJ (s)", "BHJ (s)", "winner"],
            [
                (p.config.container_gb, p.smj_time_s, p.bhj_time_s, p.winner)
                for p in result.container_size_sweep
            ],
            title="Fig 3(a): varying container size (5.1 GB orders, nc=10)",
        )
    )
    print(
        format_table(
            ["#containers", "SMJ (s)", "BHJ (s)", "winner"],
            [
                (
                    p.config.num_containers,
                    p.smj_time_s,
                    p.bhj_time_s,
                    p.winner,
                )
                for p in result.container_count_sweep
            ],
            title="Fig 3(b): varying #containers (3.4 GB orders, cs=3 GB)",
        )
    )
    switch_gb = result.switch_container_gb()
    switch_nc = result.switch_container_count()
    print(
        f"switch at {switch_gb} GB containers (paper: 7) and "
        f"{switch_nc} containers (paper: 20)"
    )
    benchmark.extra_info["switch_container_gb"] = switch_gb
    benchmark.extra_info["switch_container_count"] = switch_nc
    assert switch_gb == 7.0
    assert switch_nc == 20
