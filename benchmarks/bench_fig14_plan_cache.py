"""Fig 14 benchmark: resource-plan-cache effectiveness on TPC-H All.

Paper series: #resource configurations explored and planner runtime for
the nearest-neighbour and weighted-average cache variants over data-delta
thresholds 0..0.1 GB. The paper's abstract claims up to 16x resource
planning overhead reduction; caching delivers up to 10x planner runtime
reduction at the 0.1 GB threshold.
"""

from _bench_utils import run_once

from repro.experiments import fig14_plan_cache
from repro.experiments.report import format_table


def test_fig14_plan_cache(benchmark):
    result = run_once(benchmark, fig14_plan_cache.run)
    print()
    print(
        f"HillClimbing (no cache): {result.baseline_iterations} iters, "
        f"{result.baseline_runtime_ms:.1f} ms"
    )
    print(
        format_table(
            [
                "variant",
                "threshold (GB)",
                "#resource iters",
                "runtime (ms)",
                "hits",
                "misses",
            ],
            [
                (
                    p.variant,
                    f"{p.threshold_gb:g}",
                    p.resource_iterations,
                    p.runtime_ms,
                    p.cache_hits,
                    p.cache_misses,
                )
                for p in result.points
            ],
            title="Fig 14: plan cache effectiveness (TPC-H All)",
        )
    )
    reduction = result.best_iteration_reduction()
    print(f"best reduction: {reduction:.1f}x (paper abstract: up to 16x)")
    benchmark.extra_info["best_reduction"] = reduction
    assert reduction > 4.0
