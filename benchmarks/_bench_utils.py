"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's figures: it runs the
experiment driver under pytest-benchmark, prints the same series the paper
plots, and records the figure's headline metrics in ``extra_info`` so they
land in the benchmark JSON.

Run with: ``pytest benchmarks/ --benchmark-only``.
"""

import pytest


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark an experiment driver with a single round.

    The drivers are full parameter sweeps (seconds to minutes), so the
    default calibrating runner would multiply their cost; one warm round
    is both faithful to the paper's "average of 3 runs" scale and cheap.
    """
    return benchmark.pedantic(
        func, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
