"""Ablation: cost-model fidelity and its effect on plan quality.

Compares the paper's exact 7-feature model, our extended feature set, and
the simulator oracle: (i) fit quality on a held-out data-resource grid,
(ii) end-to-end executed time of the plan each model leads the RAQO
planner to pick (the metric that actually matters).
"""

from _bench_utils import run_once

from repro.catalog import tpch
from repro.catalog.statistics import StatisticsEstimator
from repro.core.cost_model import (
    CostModelSuite,
    EXTENDED_FEATURES,
    PAPER_FEATURES,
    SimulatorCostModel,
)
from repro.core.raqo import DEFAULT_QO_RESOURCES, RaqoPlanner
from repro.engine.executor import execute_plan
from repro.engine.joins import JoinAlgorithm
from repro.engine.profiler import default_training_grid, profile_grid
from repro.engine.profiles import HIVE_PROFILE
from repro.experiments.report import format_table


def _fit_and_plan():
    training = default_training_grid(HIVE_PROFILE)
    holdout = profile_grid(
        HIVE_PROFILE,
        small_sizes_gb=(0.4, 1.5, 2.5, 3.5, 5.5, 7.0),
        large_gb=77.0,
        container_counts=(8, 25, 45),
        container_sizes_gb=(2.5, 6.0, 8.5),
    )
    catalog = tpch.tpch_catalog(100)
    estimator = StatisticsEstimator(catalog)

    models = {
        "paper7": CostModelSuite.train(
            training,
            HIVE_PROFILE.hash_memory_fraction,
            PAPER_FEATURES,
        ),
        "extended": CostModelSuite.train(
            training,
            HIVE_PROFILE.hash_memory_fraction,
            EXTENDED_FEATURES,
        ),
        "oracle": SimulatorCostModel(HIVE_PROFILE),
    }
    rows = []
    for name, model in models.items():
        if isinstance(model, CostModelSuite):
            r2 = model.models[JoinAlgorithm.SORT_MERGE].r_squared(
                holdout
            )
        else:
            r2 = 1.0
        planner = RaqoPlanner(catalog, cost_model=model)
        plan = planner.optimize(tpch.QUERY_Q3).plan
        executed = execute_plan(
            plan,
            estimator,
            HIVE_PROFILE,
            default_resources=DEFAULT_QO_RESOURCES,
        )
        rows.append((name, r2, executed.time_s, executed.tb_seconds))
    return rows


def test_ablation_cost_model(benchmark):
    rows = run_once(benchmark, _fit_and_plan)
    print()
    print(
        format_table(
            [
                "cost model",
                "holdout R^2 (SMJ)",
                "executed Q3 time (s)",
                "TB*s",
            ],
            rows,
            title="Ablation: cost-model feature sets",
        )
    )
    times = {row[0]: row[2] for row in rows}
    # The oracle-guided plan is the reference; learned models should be
    # within a reasonable factor of it end to end.
    assert times["extended"] <= times["oracle"] * 3.0
    assert times["paper7"] <= times["oracle"] * 5.0
