"""Quickstart: jointly optimize a TPC-H query's plan and resources.

Runs the full RAQO pipeline on TPC-H Q3 (customer |><| orders |><|
lineitem) at scale factor 100:

1. build the TPC-H catalog (statistics + join graph),
2. train the per-operator cost models from simulator profile runs,
3. jointly pick the join order, join implementations, and per-operator
   resource configurations with the Selinger planner + hill climbing,
4. compare against the two-step baseline (plan first, resources later),
   executing both on the simulated Hive engine.

Run with: ``python examples/quickstart.py``
"""

from repro import tpch
from repro.catalog.statistics import StatisticsEstimator
from repro.cluster.containers import ResourceConfiguration
from repro.core.raqo import DEFAULT_QO_RESOURCES, RaqoPlanner
from repro.engine.executor import execute_plan
from repro.engine.profiles import HIVE_PROFILE


def main() -> None:
    catalog = tpch.tpch_catalog(scale_factor=100)
    estimator = StatisticsEstimator(catalog)
    query = tpch.QUERY_Q3

    # --- joint resource and query optimization (RAQO) ---
    raqo = RaqoPlanner.default(catalog)
    raqo_result = raqo.optimize(query)
    print("=== RAQO joint plan ===")
    print(raqo_result.plan.explain())
    print(
        f"predicted time: {raqo_result.cost.time_s:.1f}s, "
        f"predicted cost: ${raqo_result.cost.money:.3f}, "
        f"planning took {raqo_result.wall_time_s * 1000:.1f} ms, "
        f"{raqo_result.resource_iterations} resource configurations "
        "explored"
    )

    # --- the current practice: plan first, pick resources later ---
    baseline = RaqoPlanner.two_step_baseline(catalog)
    baseline_result = baseline.optimize(query)
    print("\n=== Two-step baseline plan ===")
    print(baseline_result.plan.explain())

    # --- execute both on the simulated Hive engine ---
    raqo_run = execute_plan(
        raqo_result.plan,
        estimator,
        HIVE_PROFILE,
        default_resources=DEFAULT_QO_RESOURCES,
    )
    baseline_run = execute_plan(
        baseline_result.plan,
        estimator,
        HIVE_PROFILE,
        default_resources=DEFAULT_QO_RESOURCES,
    )
    print("\n=== Simulated execution (Hive profile) ===")
    print(
        f"RAQO:     {raqo_run.time_s:8.1f}s "
        f"{raqo_run.tb_seconds:8.2f} TB*s  ${raqo_run.dollars:.3f}"
    )
    print(
        f"baseline: {baseline_run.time_s:8.1f}s "
        f"{baseline_run.tb_seconds:8.2f} TB*s  ${baseline_run.dollars:.3f}"
    )
    speedup = baseline_run.time_s / raqo_run.time_s
    print(f"RAQO speedup over the two-step baseline: {speedup:.2f}x")


if __name__ == "__main__":
    main()
