"""The four RAQO operating modes of the paper's Sec IV.

1. ``r => p``     : best plan for a fixed resource budget (tenant quota),
2. ``p => (r, c)``: keep a plan, re-plan its resources for lower cost,
3. ``(p, r)``     : full joint optimization,
4. ``c => (p, r)``: best performance under a monetary price cap.

Run with: ``python examples/budget_and_price.py``
"""

from repro import tpch
from repro.cluster.containers import ResourceConfiguration
from repro.core.raqo import RaqoPlanner
from repro.core.use_cases import (
    best_joint_plan,
    best_plan_for_budget,
    plan_for_price,
    plan_resources_for_plan,
)
from repro.planner.plan import left_deep_plan


def main() -> None:
    catalog = tpch.tpch_catalog(scale_factor=100)
    planner = RaqoPlanner.default(catalog)
    query = tpch.QUERY_Q3

    # Use-case 1: a multi-tenant quota of 20 x 4 GB containers.
    budget = ResourceConfiguration(num_containers=20, container_gb=4.0)
    result = best_plan_for_budget(planner, query, budget)
    print(f"[r => p] best plan within {budget}:")
    print(result.plan.explain())
    print(f"  predicted time {result.cost.time_s:.1f}s\n")

    # Use-case 2: the user is happy with this fixed plan; minimise cost.
    fixed_plan = left_deep_plan(("customer", "orders", "lineitem"))
    annotated, cost = plan_resources_for_plan(planner, fixed_plan)
    print("[p => (r, c)] resources re-planned for the fixed plan:")
    print(annotated.explain())
    print(
        f"  predicted time {cost.time_s:.1f}s, "
        f"monetary cost ${cost.money:.3f}\n"
    )

    # Use-case 3: abundant resources -- full joint optimization.
    joint = best_joint_plan(planner, query)
    print("[(p, r)] joint plan:")
    print(joint.plan.explain())
    print(f"  predicted time {joint.cost.time_s:.1f}s\n")

    # Use-case 4: a price cap of $0.25.
    priced = plan_for_price(planner, query, max_dollars=0.25)
    print("[c => (p, r)] best plan under a $0.25 cap "
          f"(within budget: {priced.within_budget}):")
    print(priced.plan.explain())
    print(
        f"  predicted time {priced.cost.time_s:.1f}s at "
        f"${priced.cost.money:.3f}"
    )


if __name__ == "__main__":
    main()
