"""Scheduler policies, plan robustness, and what-if analysis (Sec VIII).

Walks three of the paper's research-agenda scenarios end to end:

1. **DAG scheduler interaction** -- a joint plan arrives at a busy
   cluster; compare the DELAY / FAIL / FALLBACK admission policies, with
   the FastRandomized Pareto frontier providing fallback alternatives.
2. **Robust planning** -- pick the plan with minimal worst-case regret
   across quiet/busy/contended envelopes.
3. **What-if analysis** -- show how the optimal joint plan morphs as the
   available envelope shrinks, and the price-performance frontier RAQO
   exposes.

Run with: ``python examples/scheduling_and_whatif.py``
"""

from repro import tpch
from repro.cluster.cluster import ClusterConditions
from repro.cluster.scheduler import (
    DagScheduler,
    SchedulingPolicy,
    frontier_to_alternatives,
)
from repro.core.price_performance import price_performance_curve
from repro.core.raqo import PlannerKind, RaqoPlanner
from repro.core.robustness import RobustnessCriterion, robust_plan
from repro.core.whatif import default_sweep, what_if


def main() -> None:
    catalog = tpch.tpch_catalog(scale_factor=100)

    # --- 1. scheduler policies over a Pareto frontier of plans ---
    multi = RaqoPlanner(
        catalog, planner_kind=PlannerKind.FAST_RANDOMIZED
    )
    result = multi.optimize(tpch.QUERY_Q3)
    alternatives = frontier_to_alternatives(result.frontier)
    scheduler = DagScheduler(
        capacity_gb=1000.0, free_gb=60.0, drain_rate_gb_s=2.0
    )
    print("=== scheduler policies (60 GB free of 1 TB) ===")
    for policy in SchedulingPolicy:
        decision = scheduler.schedule(alternatives, policy)
        print(
            f"{policy}: admitted={decision.admitted} "
            f"wait={decision.expected_wait_s:.0f}s "
            f"fallback={decision.ran_fallback}"
        )

    # --- 2. robust plan across envelopes ---
    planner = RaqoPlanner.default(catalog)
    scenarios = (
        ClusterConditions(max_containers=100, max_container_gb=10.0),
        ClusterConditions(max_containers=25, max_container_gb=5.0),
        ClusterConditions(max_containers=8, max_container_gb=2.0),
    )
    choice = robust_plan(
        planner,
        tpch.QUERY_Q2,
        scenarios,
        RobustnessCriterion.MINMAX_REGRET,
    )
    print("\n=== robust plan (min-max regret) ===")
    print(choice.plan.explain())
    print(
        f"max regret {choice.max_regret_s:.1f}s, worst case "
        f"{choice.worst_case_s:.1f}s across {len(scenarios)} scenarios"
    )

    # --- 3. what-if sweep + price-performance frontier ---
    report = what_if(planner, tpch.QUERY_Q2, default_sweep())
    print("\n=== what-if: shrinking envelope ===")
    for point in report.points:
        algorithms = "/".join(a.value for a in point.algorithms)
        print(
            f"{point.cluster.max_containers:>3} x "
            f"{point.cluster.max_container_gb:>4.1f} GB: "
            f"{point.predicted_time_s:8.1f}s  [{algorithms}]"
        )
    print(
        f"{report.distinct_plans} distinct plans across the sweep; "
        f"changes at indices {report.plan_changes}"
    )

    curve = price_performance_curve(
        planner, tpch.QUERY_Q3, money_weights=(0.0, 10.0, 100.0)
    )
    print("\n=== price-performance frontier (Q3) ===")
    for point in curve.points:
        print(f"  {point.time_s:8.1f}s  ${point.dollars:.4f}")


if __name__ == "__main__":
    main()
