"""Adaptive RAQO: re-optimizing when cluster conditions change.

The paper (Secs IV and VIII): "If the cluster conditions change until or
during the execution of the query, the dataflow/runtime can further
adjust the query/resource plan by consulting the optimizer."

This example simulates a shared cluster under bursty load with the
queueing resource manager, observes how much capacity is actually
available, and re-plans a TPC-H query as the envelope shrinks from the
full cluster to a heavily contended one. The chosen join implementations
and per-operator resources shift with the available envelope.

Run with: ``python examples/adaptive_reoptimization.py``
"""

import numpy as np

from repro import tpch
from repro.cluster.cluster import ClusterConditions
from repro.cluster.trace import TraceConfig, simulate_trace
from repro.core.raqo import RaqoPlanner


def available_envelopes() -> list:
    """Cluster envelopes as contention grows (from a queueing sim)."""
    # Run a short trace to measure achieved utilisation; the leftover
    # capacity becomes the envelope RAQO is offered at each stage.
    config = TraceConfig(num_jobs=400)
    records = simulate_trace(config, np.random.default_rng(3))
    finish = max(r.finish_time_s for r in records)
    busy = sum(r.runtime_s * r.memory_gb for r in records) / (
        finish * config.capacity_gb
    )
    print(
        f"simulated shared cluster utilisation: {busy:.0%} "
        f"over {finish / 3600:.1f} h, {len(records)} jobs"
    )
    return [
        ("quiet cluster", ClusterConditions(max_containers=100, max_container_gb=10.0)),
        ("busy cluster", ClusterConditions(max_containers=40, max_container_gb=6.0)),
        ("contended cluster", ClusterConditions(max_containers=12, max_container_gb=2.0)),
    ]


def main() -> None:
    catalog = tpch.tpch_catalog(scale_factor=100)
    planner = RaqoPlanner.default(catalog)
    query = tpch.QUERY_Q2

    previous_signature = None
    for label, cluster in available_envelopes():
        result = planner.replan(query, cluster)
        print(f"\n=== {label}: up to {cluster.max_containers} x "
              f"{cluster.max_container_gb:g} GB ===")
        print(result.plan.explain())
        print(
            f"predicted time {result.cost.time_s:.1f}s "
            f"(planning {result.wall_time_s * 1000:.1f} ms)"
        )
        signature = result.plan.explain()
        if previous_signature and signature != previous_signature:
            print("-> plan adapted to the new cluster conditions")
        previous_signature = signature


if __name__ == "__main__":
    main()
