"""Rule-based RAQO: resource-aware decision trees in Hive and Spark.

Demonstrates Sec V of the paper end to end:

1. sweep the data-resource space of the simulated engine and label each
   point with the faster join implementation,
2. train a CART decision tree on the labels (the paper's Fig 11 trees),
3. plug the learned rule into a query plan and compare it against the
   stock 10 MB broadcast threshold (Fig 10) across several cluster
   conditions.

Run with: ``python examples/resource_aware_rules.py``
"""

from repro import tpch
from repro.catalog.statistics import StatisticsEstimator
from repro.cluster.containers import ResourceConfiguration
from repro.core.rules import (
    DefaultThresholdRule,
    RaqoDecisionTreeRule,
    apply_rule_to_plan,
)
from repro.engine.executor import execute_plan
from repro.engine.profiles import HIVE_PROFILE
from repro.planner.plan import left_deep_plan


def main() -> None:
    profile = HIVE_PROFILE
    # 1-2. learn the resource-aware rule from the data-resource space.
    raqo_rule = RaqoDecisionTreeRule.train(
        profile,
        large_gb=77.0,
        data_sizes_gb=[0.25, 0.5, 1, 2, 3, 4, 5, 6, 7, 8],
        container_sizes_gb=[2, 3, 5, 7, 9, 11],
        container_counts=[5, 10, 20, 40],
        max_depth=6,
    )
    default_rule = DefaultThresholdRule(
        profile.default_broadcast_threshold_gb
    )
    print("Learned RAQO decision tree "
          f"(max path length {raqo_rule.max_path_length}):")
    print(raqo_rule.export_text())

    # 3. apply both rules to the same join order under different
    #    cluster conditions and execute on the simulator.
    catalog = tpch.tpch_catalog(scale_factor=100)
    estimator = StatisticsEstimator(catalog)
    base_plan = left_deep_plan(("customer", "orders", "lineitem"))

    print("\nexecution with each rule (customer |><| orders |><| lineitem):")
    print(f"{'resources':>14} {'default rule':>14} {'RAQO rule':>12}")
    for config in (
        ResourceConfiguration(num_containers=10, container_gb=3.0),
        ResourceConfiguration(num_containers=10, container_gb=9.0),
        ResourceConfiguration(num_containers=40, container_gb=3.0),
        ResourceConfiguration(num_containers=5, container_gb=10.0),
    ):
        rows = []
        for rule in (default_rule, raqo_rule):
            plan = apply_rule_to_plan(
                base_plan, rule, estimator, config
            )
            run = execute_plan(
                plan, estimator, profile, default_resources=config
            )
            rows.append(run.time_s)
        marker = "  <- RAQO wins" if rows[1] < rows[0] else ""
        print(
            f"{str(config):>14} {rows[0]:>12.1f}s {rows[1]:>10.1f}s"
            f"{marker}"
        )


if __name__ == "__main__":
    main()
